//! Compiled event-dispatch plans: the allocation-free serve path.
//!
//! The paper's steady state is event dispatch (Section 4.6, Figure 5):
//! locate the event's cell, pick the cell's group, decide multicast vs
//! unicast. The uncompiled path — [`GridMatcher`](crate::GridMatcher)
//! over a [`GridFramework`] — hashes the cell id per event, re-counts
//! the group's membership per event and walks two levels of
//! indirection. A [`DispatchPlan`] compiles the framework + clustering
//! pair once into flat arrays so the per-event work is:
//!
//! 1. **point → cell**: per-dimension precomputed `lo/width/stride`
//!    replicating [`Grid::cell_of`](geometry::Grid::cell_of)
//!    bit-for-bit (same expressions over the same values);
//! 2. **cell → hyper-cell → group**: one dense `Vec<u32>` load plus one
//!    `Vec<u32>` index — no hashing (grids above
//!    [`DENSE_TABLE_MAX_CELLS`] fall back to a copied hash map);
//! 3. **threshold test**: the group's member count is precomputed; the
//!    hit count is either a packed word-AND popcount against the
//!    interested set or a walk of the group's member-index list,
//!    whichever touches less memory — both produce the same integer.
//!
//! With [`DispatchPlan::with_subscriptions`] the plan also *computes*
//! the interested set without a full R-tree stab: the event cell's
//! interned membership list is a sound candidate superset (any
//! rectangle containing the point overlaps the point's cell), so
//! filtering it by rectangle containment yields the exact interested
//! ids into a reusable [`DispatchScratch`] buffer — zero heap
//! allocation per event in steady state.
//!
//! Decisions are bit-identical to `GridMatcher::match_event` (pinned by
//! the `dispatch_equivalence` proptest); [`NoLossDispatchPlan`] does
//! the same for [`NoLossClustering::match_event`].

use std::collections::HashMap;
use std::ops::Range;

use geometry::{Point, Rect};

use crate::clustering::Clustering;
use crate::framework::GridFramework;
use crate::match_index::SubscriptionIndex;
use crate::matching::Delivery;
use crate::membership::BitSet;
use crate::noloss::NoLossClustering;

const WORD_BITS: usize = 64;

/// Largest grid (in cells) for which the plan materializes the dense
/// cell table (one `u32` per grid cell — 4 MiB at the cap). Larger
/// grids keep a flat-copied hash map: lookups then hash once per event,
/// as the uncompiled path does, but still skip the membership re-count
/// and the double indirection.
pub const DENSE_TABLE_MAX_CELLS: usize = 1 << 20;

/// Sentinel in the dense cell table: "this cell was not kept".
pub(crate) const NO_SLOT: u32 = u32::MAX;

/// Precompiled point-location state for one grid dimension. `width` is
/// computed with the same expression [`geometry::Grid`] uses
/// (`length / bins`), so the division and `ceil` below reproduce
/// `Grid::cell_of` bit-for-bit.
#[derive(Debug, Clone)]
pub(crate) struct PlanDim {
    pub(crate) lo: f64,
    pub(crate) hi: f64,
    pub(crate) width: f64,
    pub(crate) bins: isize,
    pub(crate) stride: usize,
}

#[derive(Debug, Clone)]
pub(crate) enum CellTable {
    /// `table[cell] = hyper-cell index`, `NO_SLOT` when not kept.
    Dense(Vec<u32>),
    /// Fallback above [`DENSE_TABLE_MAX_CELLS`].
    Sparse(HashMap<usize, u32>),
}

/// Owned subscription state enabling the self-contained serve path
/// ([`DispatchPlan::serve`]): rectangles for candidate filtering and an
/// R-tree index for events whose cell was not kept. For the batched
/// serve kernel it also precompiles every kept slot's candidate bounds
/// into flat dimension-major arrays, so `serve_batch` scans contiguous
/// memory with no per-bucket `Rect` gather at all.
#[derive(Debug, Clone)]
pub(crate) struct ServeState {
    pub(crate) rects: Vec<Rect>,
    pub(crate) index: SubscriptionIndex,
    /// Lower bounds of slot `s`'s candidates, dimension-major within
    /// the slot's block: `cand_lo[o * dim + d * nc + k]` where
    /// `o = hyper_offsets[s]` and `nc` is the slot's member count.
    pub(crate) cand_lo: Vec<f64>,
    /// Upper bounds, same layout.
    pub(crate) cand_hi: Vec<f64>,
    /// `cand_in_group[o + k]` — whether candidate `k` of slot `s`
    /// belongs to the slot's group.
    pub(crate) cand_in_group: Vec<bool>,
}

/// Reusable per-thread buffers for [`DispatchPlan::serve`]. Buffers
/// grow to the high-water mark during warm-up and are then reused, so
/// the steady state performs zero heap allocations per event.
#[derive(Debug, Default)]
pub struct DispatchScratch {
    interested: Vec<usize>,
}

impl DispatchScratch {
    /// Creates empty scratch buffers.
    pub fn new() -> Self {
        DispatchScratch::default()
    }

    /// The interested subscription ids of the last [`DispatchPlan::serve`]
    /// call, in increasing order.
    pub fn interested(&self) -> &[usize] {
        &self.interested
    }
}

/// An immutable dispatch plan compiled from a [`GridFramework`] and a
/// [`Clustering`].
///
/// # Examples
///
/// ```
/// use geometry::{Grid, Interval, Point, Rect};
/// use pubsub_core::{
///     BitSet, CellProbability, ClusteringAlgorithm, DispatchPlan, GridFramework, GridMatcher,
///     KMeans, KMeansVariant,
/// };
///
/// let grid = Grid::cube(0.0, 10.0, 1, 10)?;
/// let subs = vec![
///     Rect::new(vec![Interval::new(0.0, 5.0)?]),
///     Rect::new(vec![Interval::new(5.0, 10.0)?]),
/// ];
/// let probs = CellProbability::uniform(&grid);
/// let fw = GridFramework::build(grid, &subs, &probs, None);
/// let clustering = KMeans::new(KMeansVariant::Forgy).cluster(&fw, 2);
/// let plan = DispatchPlan::compile(&fw, &clustering);
/// let matcher = GridMatcher::new(&fw, &clustering);
/// let interested = BitSet::from_members(2, [0]);
/// let p = Point::new(vec![2.0]);
/// assert_eq!(plan.dispatch(&p, &interested), matcher.match_event(&p, &interested));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct DispatchPlan {
    pub(crate) threshold: f64,
    pub(crate) num_subscribers: usize,
    /// Words per packed membership set (`num_subscribers / 64`, ceil).
    pub(crate) words: usize,
    pub(crate) dims: Vec<PlanDim>,
    pub(crate) table: CellTable,
    /// `hyper_group[h]` — the group of kept hyper-cell `h`.
    pub(crate) hyper_group: Vec<u32>,
    /// Concatenated member-index lists of the kept hyper-cells
    /// (ascending within each list) …
    pub(crate) hyper_members: Vec<u32>,
    /// … delimited by `hyper_offsets[h] .. hyper_offsets[h + 1]`.
    pub(crate) hyper_offsets: Vec<u32>,
    /// Precomputed `members.count()` per group.
    pub(crate) group_size: Vec<u32>,
    /// Packed membership words of every group, `words` per group.
    pub(crate) group_words: Vec<u64>,
    /// Concatenated member-index lists of the groups (ascending) …
    pub(crate) group_members: Vec<u32>,
    /// … delimited by `group_offsets[g] .. group_offsets[g + 1]`.
    pub(crate) group_offsets: Vec<u32>,
    pub(crate) serve_state: Option<ServeState>,
}

impl DispatchPlan {
    /// Compiles the plan with threshold 0 (always multicast when a
    /// group is matched), matching [`GridMatcher::new`](crate::GridMatcher::new).
    ///
    /// # Panics
    ///
    /// Panics if `clustering` was not built over `framework` (hyper-cell
    /// counts disagree).
    pub fn compile(framework: &GridFramework, clustering: &Clustering) -> Self {
        let grid = framework.grid();
        let dim = grid.dim();
        let bounds = grid.bounds();
        let bins = grid.bins();
        // Row-major strides, recomputed exactly as `Grid::new` does.
        let mut strides = vec![1usize; dim];
        for d in (0..dim.saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * bins[d + 1];
        }
        let dims: Vec<PlanDim> = (0..dim)
            .map(|d| {
                let iv = bounds.interval(d);
                PlanDim {
                    lo: iv.lo(),
                    hi: iv.hi(),
                    width: iv.length() / bins[d] as f64,
                    bins: bins[d] as isize,
                    stride: strides[d],
                }
            })
            .collect();

        let hcs = framework.hypercells();
        let hyper_group: Vec<u32> = (0..hcs.len())
            .map(|h| clustering.group_of_hyper(h) as u32)
            .collect();

        let mapping = framework.cell_to_hyper();
        let table = if grid.num_cells() <= DENSE_TABLE_MAX_CELLS {
            let mut t = vec![NO_SLOT; grid.num_cells()];
            for (&cell, &h) in mapping {
                t[cell.index()] = h as u32;
            }
            CellTable::Dense(t)
        } else {
            CellTable::Sparse(
                mapping
                    .iter()
                    .map(|(&c, &h)| (c.index(), h as u32))
                    .collect(),
            )
        };

        let mut hyper_members = Vec::new();
        let mut hyper_offsets = Vec::with_capacity(hcs.len() + 1);
        hyper_offsets.push(0u32);
        for hc in hcs {
            hyper_members.extend(hc.members.iter().map(|m| m as u32));
            hyper_offsets.push(hyper_members.len() as u32);
        }

        let num_subscribers = framework.num_subscribers();
        let words = num_subscribers.div_ceil(WORD_BITS);
        let groups = clustering.groups();
        let mut group_size = Vec::with_capacity(groups.len());
        let mut group_words = Vec::with_capacity(groups.len() * words);
        let mut group_members = Vec::new();
        let mut group_offsets = Vec::with_capacity(groups.len() + 1);
        group_offsets.push(0u32);
        for g in groups {
            group_size.push(g.members.count() as u32);
            group_words.extend_from_slice(g.members.words());
            group_members.extend(g.members.iter().map(|m| m as u32));
            group_offsets.push(group_members.len() as u32);
        }

        DispatchPlan {
            threshold: 0.0,
            num_subscribers,
            words,
            dims,
            table,
            hyper_group,
            hyper_members,
            hyper_offsets,
            group_size,
            group_words,
            group_members,
            group_offsets,
            serve_state: None,
        }
    }

    /// Sets the minimum proportion of group members that must be
    /// interested for a multicast, exactly as
    /// [`GridMatcher::with_threshold`](crate::GridMatcher::with_threshold).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is outside `[0, 1]`.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be a proportion"
        );
        self.threshold = threshold;
        self
    }

    /// Attaches the subscription rectangles, enabling
    /// [`DispatchPlan::serve`] (the plan copies the rectangles, builds
    /// the unicast-fallback R-tree once, and precompiles every kept
    /// slot's candidate bounds into the flat arrays the batched serve
    /// kernel scans — see DESIGN.md §13).
    ///
    /// # Panics
    ///
    /// Panics if the subscription count differs from the framework's.
    pub fn with_subscriptions(mut self, subscriptions: &[Rect]) -> Self {
        assert_eq!(
            subscriptions.len(),
            self.num_subscribers,
            "subscription count must match the compiled framework"
        );
        let dim = self.dims.len();
        let total = self.hyper_members.len();
        let mut cand_lo = vec![0.0f64; total * dim];
        let mut cand_hi = vec![0.0f64; total * dim];
        let mut cand_in_group = vec![false; total];
        for s in 0..self.hyper_group.len() {
            let o = self.hyper_offsets[s] as usize;
            let end = self.hyper_offsets[s + 1] as usize;
            let nc = end - o;
            let group = self.hyper_group[s] as usize;
            for (k, &id) in self.hyper_members[o..end].iter().enumerate() {
                let rect = &subscriptions[id as usize];
                for d in 0..dim {
                    let iv = rect.interval(d);
                    cand_lo[o * dim + d * nc + k] = iv.lo();
                    cand_hi[o * dim + d * nc + k] = iv.hi();
                }
                cand_in_group[o + k] = self.group_contains(group, id as usize);
            }
        }
        self.serve_state = Some(ServeState {
            rects: subscriptions.to_vec(),
            index: SubscriptionIndex::build(subscriptions),
            cand_lo,
            cand_hi,
            cand_in_group,
        });
        self
    }

    /// The configured threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Number of compiled groups.
    pub fn num_groups(&self) -> usize {
        self.group_size.len()
    }

    // lint: hot-path
    /// Point → kept hyper-cell, replicating
    /// [`Grid::cell_of`](geometry::Grid::cell_of) bit-for-bit (same
    /// float expressions over the same values) followed by the flat
    /// table lookup.
    ///
    /// # Panics
    ///
    /// Panics if `p.dim()` differs from the grid's.
    pub(crate) fn locate(&self, p: &Point) -> Option<u32> {
        assert_eq!(p.dim(), self.dims.len(), "dimension mismatch");
        let mut idx = 0usize;
        for (d, pd) in self.dims.iter().enumerate() {
            let x = p[d];
            // `Interval::contains`: lo < x <= hi.
            if !(pd.lo < x && x <= pd.hi) {
                return None;
            }
            let t = (x - pd.lo) / pd.width;
            let i = (t.ceil() as isize - 1).clamp(0, pd.bins - 1) as usize;
            idx += i * pd.stride;
        }
        let slot = match &self.table {
            CellTable::Dense(t) => t[idx],
            CellTable::Sparse(m) => m.get(&idx).copied().unwrap_or(NO_SLOT),
        };
        (slot != NO_SLOT).then_some(slot)
    }

    /// `|group ∩ interested|`, choosing the cheaper of the two exact
    /// strategies: walk the group's member list testing bits (sparse
    /// groups) or AND the packed words in blocked popcount form (dense
    /// groups). Both return the same integer, so the choice never
    /// affects decisions.
    pub(crate) fn group_hits(&self, group: usize, interested: &BitSet) -> usize {
        let size = self.group_size[group] as usize;
        if size <= self.words {
            let range = self.group_offsets[group] as usize..self.group_offsets[group + 1] as usize;
            self.group_members[range]
                .iter()
                .filter(|&&i| interested.contains(i as usize))
                .count()
        } else {
            crate::membership::and_popcount_words(
                &self.group_words[group * self.words..(group + 1) * self.words],
                interested.words(),
            )
        }
    }

    /// Whether subscriber `i` belongs to `group`.
    pub(crate) fn group_contains(&self, group: usize, i: usize) -> bool {
        self.group_words[group * self.words + i / WORD_BITS] & (1 << (i % WORD_BITS)) != 0
    }

    /// The threshold decision given a matched hyper-cell slot and the
    /// exact hit count — shared tail of [`dispatch`](Self::dispatch)
    /// and [`serve`](Self::serve), mirroring `GridMatcher::match_event`.
    pub(crate) fn decide(&self, slot: u32, hits: usize) -> Delivery {
        let group = self.hyper_group[slot as usize] as usize;
        let size = self.group_size[group] as usize;
        if size == 0 {
            return Delivery::Unicast;
        }
        let proportion = hits as f64 / size as f64;
        if proportion >= self.threshold && hits > 0 {
            Delivery::Multicast { group }
        } else {
            Delivery::Unicast
        }
    }

    /// Matches one event against a caller-computed interested set.
    /// Allocation-free; bit-identical to
    /// [`GridMatcher::match_event`](crate::GridMatcher::match_event).
    ///
    /// # Panics
    ///
    /// Panics if the interested set's universe differs from the
    /// framework's subscription count, or on dimension mismatch.
    pub fn dispatch(&self, p: &Point, interested: &BitSet) -> Delivery {
        assert_eq!(
            interested.universe(),
            self.num_subscribers,
            "universe mismatch"
        );
        let slot = match self.locate(p) {
            Some(s) => s,
            None => return Delivery::Unicast,
        };
        let group = self.hyper_group[slot as usize] as usize;
        if self.group_size[group] == 0 {
            return Delivery::Unicast;
        }
        self.decide(slot, self.group_hits(group, interested))
    }

    /// Batched [`dispatch`](Self::dispatch) over an index range: pushes
    /// one [`Delivery`] per index onto `out` (which is *not* cleared).
    /// Designed for fixed-size chunk decompositions — the caller picks
    /// the chunk boundaries, so deterministic reductions (such as
    /// `sim`'s `EVENT_CHUNK` sums) are preserved.
    pub fn dispatch_chunk<'a>(
        &self,
        range: Range<usize>,
        point_of: impl Fn(usize) -> &'a Point,
        interested_of: impl Fn(usize) -> &'a BitSet,
        out: &mut Vec<Delivery>,
    ) {
        out.reserve(range.len());
        for e in range {
            out.push(self.dispatch(point_of(e), interested_of(e)));
        }
    }

    /// The self-contained serve path: computes the exact interested set
    /// *and* the delivery decision for one event, allocation-free in
    /// steady state.
    ///
    /// For events inside a kept cell, the candidates are the cell's
    /// interned membership list (a sound superset of the interested
    /// set: any rectangle containing the point overlaps the point's
    /// cell) filtered by exact rectangle containment — no R-tree
    /// descent. Events outside every kept cell fall back to the R-tree
    /// index and are unicast, as in the uncompiled path. After the
    /// call, [`DispatchScratch::interested`] holds the interested ids
    /// in increasing order.
    ///
    /// # Panics
    ///
    /// Panics if the plan was compiled without
    /// [`with_subscriptions`](Self::with_subscriptions).
    pub fn serve(&self, p: &Point, scratch: &mut DispatchScratch) -> Delivery {
        let state = self
            .serve_state
            .as_ref()
            .expect("DispatchPlan::serve requires with_subscriptions");
        match self.locate(p) {
            Some(slot) => {
                scratch.interested.clear();
                let range = self.hyper_offsets[slot as usize] as usize
                    ..self.hyper_offsets[slot as usize + 1] as usize;
                for &i in &self.hyper_members[range] {
                    if state.rects[i as usize].contains(p) {
                        scratch.interested.push(i as usize);
                    }
                }
                let group = self.hyper_group[slot as usize] as usize;
                if self.group_size[group] == 0 {
                    return Delivery::Unicast;
                }
                let hits = scratch
                    .interested
                    .iter()
                    .filter(|&&i| self.group_contains(group, i))
                    .count();
                self.decide(slot, hits)
            }
            None => {
                // Not kept: the cell membership is unknown (truncated or
                // empty), so fall back to the full index. The decision is
                // always unicast, matching `group_of_point → None`.
                state.index.matching_into(p, &mut scratch.interested);
                Delivery::Unicast
            }
        }
    }
    // lint: hot-path end
}

/// A compiled No-Loss dispatch plan: per-region member counts and
/// weights copied into one flat array so the best-region fold touches
/// no [`BitSet`] and allocates nothing (Figure 6's matching loop).
///
/// Decisions are identical to
/// [`NoLossClustering::match_event`](crate::NoLossClustering::match_event).
#[derive(Debug, Clone)]
pub struct NoLossDispatchPlan<'a> {
    clustering: &'a NoLossClustering,
    /// `(member count, weight)` per region — the comparator key.
    keys: Vec<(u32, f64)>,
}

impl<'a> NoLossDispatchPlan<'a> {
    /// Compiles the plan from a built No-Loss clustering. The member
    /// counts are copied from the clustering's precomputed (possibly
    /// class-weighted) counts so aggregated and concrete plans rank
    /// regions identically.
    pub fn compile(clustering: &'a NoLossClustering) -> Self {
        let keys = clustering
            .regions()
            .iter()
            .zip(&clustering.counts)
            .map(|(r, &c)| (c, r.weight))
            .collect();
        NoLossDispatchPlan { clustering, keys }
    }

    // lint: hot-path
    /// Matches one event to the best containing region, exactly as
    /// [`NoLossClustering::match_event`](crate::NoLossClustering::match_event):
    /// maximal member count, then weight; ties prefer the lower index.
    pub fn match_event(&self, p: &Point) -> Option<usize> {
        let mut best: Option<usize> = None;
        self.clustering.stab_regions_with(p, |i| {
            best = Some(match best {
                None => i,
                Some(b) => {
                    if self.beats(i, b) {
                        i
                    } else {
                        b
                    }
                }
            });
        });
        best
    }

    /// Whether region `a` wins over region `b` under the matcher's
    /// total order (count, then weight, then lower index). The order is
    /// strict for `a != b`, so the fold's result does not depend on
    /// visitation order.
    fn beats(&self, a: usize, b: usize) -> bool {
        let (ca, wa) = self.keys[a];
        let (cb, wb) = self.keys[b];
        ca.cmp(&cb)
            .then_with(|| wa.partial_cmp(&wb).expect("weight is never NaN"))
            .then(b.cmp(&a))
            .is_gt()
    }

    /// Batched [`match_event`](Self::match_event) over an index range:
    /// pushes one decision per index onto `out` (not cleared).
    pub fn dispatch_chunk<'p>(
        &self,
        range: Range<usize>,
        point_of: impl Fn(usize) -> &'p Point,
        out: &mut Vec<Option<usize>>,
    ) {
        out.reserve(range.len());
        for e in range {
            out.push(self.match_event(point_of(e)));
        }
    }
    // lint: hot-path end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::CellProbability;
    use crate::kmeans::{KMeans, KMeansVariant};
    use crate::matching::GridMatcher;
    use crate::ClusteringAlgorithm;
    use geometry::{Grid, Interval};
    use rand::prelude::*;

    fn random_rect(rng: &mut StdRng) -> Rect {
        let lo = rng.gen_range(0.0..9.0);
        let hi = lo + rng.gen_range(0.1..4.0);
        Rect::new(vec![Interval::new(lo, hi.min(10.0)).unwrap()])
    }

    fn scenario(
        n: usize,
        max_cells: Option<usize>,
        seed: u64,
    ) -> (Vec<Rect>, GridFramework, Clustering) {
        let mut rng = StdRng::seed_from_u64(seed);
        let subs: Vec<Rect> = (0..n).map(|_| random_rect(&mut rng)).collect();
        let grid = Grid::cube(0.0, 10.0, 1, 50).unwrap();
        let probs = CellProbability::uniform(&grid);
        let fw = GridFramework::build(grid, &subs, &probs, max_cells);
        let c = KMeans::new(KMeansVariant::MacQueen).cluster(&fw, 5);
        (subs, fw, c)
    }

    #[test]
    fn dispatch_matches_grid_matcher_bit_for_bit() {
        for (max_cells, seed) in [(None, 7u64), (Some(8), 8u64)] {
            let (subs, fw, c) = scenario(120, max_cells, seed);
            let mut rng = StdRng::seed_from_u64(seed + 100);
            for threshold in [0.0, 0.3, 1.0] {
                let matcher = GridMatcher::new(&fw, &c).with_threshold(threshold);
                let plan = DispatchPlan::compile(&fw, &c).with_threshold(threshold);
                for _ in 0..400 {
                    let p = Point::new(vec![rng.gen_range(-1.0..11.0)]);
                    let interested = BitSet::from_members(
                        subs.len(),
                        subs.iter()
                            .enumerate()
                            .filter(|(_, r)| r.contains(&p))
                            .map(|(i, _)| i),
                    );
                    assert_eq!(
                        plan.dispatch(&p, &interested),
                        matcher.match_event(&p, &interested),
                        "threshold {threshold}, point {p:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn serve_computes_exact_interested_sets() {
        let (subs, fw, c) = scenario(80, Some(10), 11);
        let plan = DispatchPlan::compile(&fw, &c)
            .with_threshold(0.2)
            .with_subscriptions(&subs);
        let matcher = GridMatcher::new(&fw, &c).with_threshold(0.2);
        let mut scratch = DispatchScratch::new();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..500 {
            let p = Point::new(vec![rng.gen_range(-1.0..11.0)]);
            let brute: Vec<usize> = subs
                .iter()
                .enumerate()
                .filter(|(_, r)| r.contains(&p))
                .map(|(i, _)| i)
                .collect();
            let decision = plan.serve(&p, &mut scratch);
            assert_eq!(scratch.interested(), &brute[..], "point {p:?}");
            let interested = BitSet::from_members(subs.len(), brute.iter().copied());
            assert_eq!(decision, matcher.match_event(&p, &interested));
        }
    }

    #[test]
    fn dispatch_chunk_appends_in_order() {
        let (subs, fw, c) = scenario(40, None, 3);
        let plan = DispatchPlan::compile(&fw, &c);
        let points: Vec<Point> = (0..10).map(|i| Point::new(vec![i as f64])).collect();
        let sets: Vec<BitSet> = points
            .iter()
            .map(|p| {
                BitSet::from_members(
                    subs.len(),
                    subs.iter()
                        .enumerate()
                        .filter(|(_, r)| r.contains(p))
                        .map(|(i, _)| i),
                )
            })
            .collect();
        let mut out = Vec::new();
        plan.dispatch_chunk(0..5, |e| &points[e], |e| &sets[e], &mut out);
        plan.dispatch_chunk(5..10, |e| &points[e], |e| &sets[e], &mut out);
        let one_by_one: Vec<Delivery> = points
            .iter()
            .zip(&sets)
            .map(|(p, s)| plan.dispatch(p, s))
            .collect();
        assert_eq!(out, one_by_one);
    }

    #[test]
    #[should_panic(expected = "with_subscriptions")]
    fn serve_without_subscriptions_panics() {
        let (_, fw, c) = scenario(10, None, 1);
        let plan = DispatchPlan::compile(&fw, &c);
        let mut scratch = DispatchScratch::new();
        let _ = plan.serve(&Point::new(vec![5.0]), &mut scratch);
    }

    #[test]
    #[should_panic(expected = "proportion")]
    fn invalid_threshold_panics() {
        let (_, fw, c) = scenario(10, None, 2);
        let _ = DispatchPlan::compile(&fw, &c).with_threshold(-0.1);
    }

    #[test]
    fn noloss_plan_agrees_with_match_event() {
        use crate::noloss::NoLossConfig;
        let mut rng = StdRng::seed_from_u64(23);
        let subs: Vec<Rect> = (0..60).map(|_| random_rect(&mut rng)).collect();
        let sample: Vec<Point> = (0..50)
            .map(|_| Point::new(vec![rng.gen_range(0.0..10.0)]))
            .collect();
        let cfg = NoLossConfig {
            max_rects: 80,
            iterations: 3,
            max_candidates_per_round: 20_000,
        };
        let nl = NoLossClustering::build(&subs, &sample, &cfg, 12);
        let plan = NoLossDispatchPlan::compile(&nl);
        for _ in 0..400 {
            let p = Point::new(vec![rng.gen_range(-1.0..11.0)]);
            assert_eq!(plan.match_event(&p), nl.match_event(&p), "point {p:?}");
        }
        let points: Vec<Point> = (0..20)
            .map(|_| Point::new(vec![rng.gen_range(0.0..10.0)]))
            .collect();
        let mut out = Vec::new();
        plan.dispatch_chunk(0..points.len(), |e| &points[e], &mut out);
        let serial: Vec<Option<usize>> = points.iter().map(|p| nl.match_event(p)).collect();
        assert_eq!(out, serial);
    }
}
