//! The No-Loss clustering algorithm (Section 4.5 of the paper).
//!
//! Grid-based groups can over-deliver: a subscriber whose rectangle
//! merely *overlaps* a cell receives every event in that cell. No-Loss
//! instead builds multicast groups from *intersections of interest
//! rectangles*: a group's region `s` is contained in every member's
//! rectangle, so "each subscriber receiving a message is interested in
//! it" — no wasted deliveries, by construction.
//!
//! The algorithm searches for the most popular intersections, weighting
//! an area `s` by `w(s) = p_p(s)·|u(s)|` where `u(s)` is the set of
//! subscribers whose rectangles contain `s`. Starting from the raw
//! subscription rectangles, each iteration intersects overlapping
//! regions pairwise (membership of an intersection is the union of the
//! parents' memberships — a sound under-approximation, since any
//! rectangle containing a parent contains the intersection), keeps the
//! `max_rects` heaviest regions, and repeats. The paper ran it with
//! 5000 rectangles and 8 iterations (Figure 8 sweeps both knobs).

use std::collections::HashMap;

use geometry::{Point, Rect};
use spatial::RTree;

use crate::membership::BitSet;
use crate::parallel;

/// Computes `u(s)` — the subscribers whose rectangles contain `rect` —
/// by exact containment tests against every subscription.
fn exact_containment(rect: &Rect, subscriptions: &[Rect]) -> BitSet {
    let mut u = BitSet::new(subscriptions.len());
    for (j, other) in subscriptions.iter().enumerate() {
        if other.contains_rect(rect) {
            u.insert(j);
        }
    }
    u
}

/// Tuning knobs of the No-Loss algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoLossConfig {
    /// Regions kept after each intersection round (paper: 5000).
    pub max_rects: usize,
    /// Number of intersection rounds (paper: 8).
    pub iterations: usize,
    /// Cap on candidate intersections examined per round, to bound the
    /// cost of dense overlap structures; the scan prioritizes heavy
    /// regions (the pool is kept sorted by weight).
    pub max_candidates_per_round: usize,
}

impl Default for NoLossConfig {
    fn default() -> Self {
        NoLossConfig {
            max_rects: 5000,
            iterations: 8,
            max_candidates_per_round: 2_000_000,
        }
    }
}

/// One No-Loss region: a rectangle together with the subscribers whose
/// interest is guaranteed to contain it.
#[derive(Debug, Clone)]
pub struct NoLossRegion {
    /// The region in event space.
    pub rect: Rect,
    /// `u(s)` — subscribers whose rectangles contain `rect`.
    pub subscribers: BitSet,
    /// `w(s) = p_p(s)·|u(s)|`.
    pub weight: f64,
}

/// The No-Loss clustering: the `K` heaviest regions, indexed for
/// point-stabbing at matching time.
///
/// # Examples
///
/// ```
/// use geometry::{Interval, Point, Rect};
/// use pubsub_core::{NoLossClustering, NoLossConfig};
///
/// let subs = vec![
///     Rect::new(vec![Interval::new(0.0, 10.0)?]),
///     Rect::new(vec![Interval::new(5.0, 15.0)?]),
/// ];
/// let sample = vec![Point::new(vec![7.0])];
/// let nl = NoLossClustering::build(&subs, &sample, &NoLossConfig::default(), 4);
/// // The overlap (5,10] is a region both subscribers belong to.
/// let hit = nl.match_event(&Point::new(vec![7.0])).unwrap();
/// assert_eq!(nl.regions()[hit].subscribers.count(), 2);
/// # Ok::<(), geometry::IntervalError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NoLossClustering {
    pub(crate) regions: Vec<NoLossRegion>,
    tree: RTree<usize>,
    /// `regions[i].subscribers.count()`, precomputed at build time so
    /// the matcher's comparator never re-counts a bit-set.
    pub(crate) counts: Vec<u32>,
}

/// Exact bit-pattern key for a rectangle (used to merge duplicate
/// regions produced by different intersection paths).
fn rect_key(r: &Rect) -> Vec<(u64, u64)> {
    r.intervals()
        .iter()
        .map(|iv| (iv.lo().to_bits(), iv.hi().to_bits()))
        .collect()
}

/// Empirical probability mass of a rectangle: its share of the sample.
fn empirical_mass(rect: &Rect, sample: &[Point]) -> f64 {
    if sample.is_empty() {
        // No density information: rank by membership alone.
        return 1.0;
    }
    let hits = sample.iter().filter(|p| rect.contains(p)).count();
    hits as f64 / sample.len() as f64
}

/// Membership size of `u`, expanded through the per-slot multiplicities
/// when clustering a class universe. The weighted integer equals the
/// concrete subscriber count, so downstream `f64` weights are
/// bit-identical to the unaggregated run.
fn wcount(u: &BitSet, weights: Option<&[u64]>) -> u64 {
    match weights {
        None => u.count() as u64,
        Some(w) => u.weighted_count(w),
    }
}

impl NoLossClustering {
    /// Runs the No-Loss algorithm over the subscription rectangles and
    /// keeps the `k` heaviest regions as multicast groups.
    ///
    /// `sample` is a sample of publication points used to estimate
    /// `p_p(s)` empirically; an empty sample ranks regions by
    /// member-count alone.
    ///
    /// # Panics
    ///
    /// Panics if subscriptions disagree on dimension.
    pub fn build(
        subscriptions: &[Rect],
        sample: &[Point],
        config: &NoLossConfig,
        k: usize,
    ) -> Self {
        let density = |rect: &Rect| empirical_mass(rect, sample);
        Self::build_with_density(subscriptions, density, sample, config, k)
    }

    /// Like [`NoLossClustering::build`], but with an arbitrary density
    /// function giving the publication mass of a rectangle — e.g. the
    /// analytic density of a workload model. `selection_sample` is a
    /// sample of publication points used by the final greedy group
    /// selection (see below); when empty, the `k` heaviest regions are
    /// kept instead.
    ///
    /// # Group selection
    ///
    /// The candidate pool easily accumulates thousands of near-identical
    /// high-weight regions around the densest publication hot spot;
    /// keeping simply the `k` heaviest would spend every group on one
    /// spot. The final selection is therefore *greedy marginal
    /// coverage*: regions are picked one at a time to maximize the
    /// expected number of additionally covered subscriber-deliveries
    /// over the sample (a monotone submodular objective, so greedy is
    /// within `1 - 1/e` of optimal).
    ///
    /// # Panics
    ///
    /// Panics if subscriptions disagree on dimension.
    pub fn build_with_density(
        subscriptions: &[Rect],
        density: impl Fn(&Rect) -> f64 + Sync,
        selection_sample: &[Point],
        config: &NoLossConfig,
        k: usize,
    ) -> Self {
        Self::build_with_density_weighted(subscriptions, None, density, selection_sample, config, k)
    }

    /// [`NoLossClustering::build`] over a *class* universe: slot `i`
    /// stands for `weights[i]` identical concrete subscriptions. Region
    /// weights, the greedy selection and the matcher's precomputed
    /// counts all use the class-expanded sizes, so region choice is
    /// bit-identical to running over the expanded population.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != subscriptions.len()` or on dimension
    /// mismatch.
    pub fn build_aggregated(
        subscriptions: &[Rect],
        weights: &[u64],
        sample: &[Point],
        config: &NoLossConfig,
        k: usize,
    ) -> Self {
        assert_eq!(
            weights.len(),
            subscriptions.len(),
            "one weight per class subscription"
        );
        let density = |rect: &Rect| empirical_mass(rect, sample);
        Self::build_with_density_weighted(subscriptions, Some(weights), density, sample, config, k)
    }

    /// Shared build body; `weights` selects class-expanded membership
    /// sizes, `None` the ordinary concrete sizes.
    fn build_with_density_weighted(
        subscriptions: &[Rect],
        weights: Option<&[u64]>,
        density: impl Fn(&Rect) -> f64 + Sync,
        selection_sample: &[Point],
        config: &NoLossConfig,
        k: usize,
    ) -> Self {
        let n = subscriptions.len();
        if n == 0 {
            return NoLossClustering {
                regions: Vec::new(),
                tree: RTree::new(1),
                counts: Vec::new(),
            };
        }
        // lint: allow(no-literal-index): the empty case returned above
        let dim = subscriptions[0].dim();
        for r in subscriptions {
            assert_eq!(r.dim(), dim, "subscription dimension mismatch");
        }

        // Initial pool: each subscription rectangle with the full set of
        // subscribers whose rectangle contains it. Duplicate rectangles
        // are collapsed first (a duplicate's containment set already
        // includes both subscribers), then the `unique · n` containment
        // scans — the quadratic part — run in parallel, one region per
        // unique rectangle, in the original subscription order.
        let mut pool: Vec<NoLossRegion> = {
            let mut by_key: HashMap<Vec<(u64, u64)>, usize> = HashMap::new();
            let mut unique: Vec<usize> = Vec::with_capacity(n);
            for (i, sub) in subscriptions.iter().enumerate() {
                let key = rect_key(sub);
                by_key.entry(key).or_insert_with(|| {
                    unique.push(i);
                    unique.len() - 1
                });
            }
            parallel::par_map(&unique, 16, |&i| {
                let u = exact_containment(&subscriptions[i], subscriptions);
                let weight = density(&subscriptions[i]) * wcount(&u, weights) as f64;
                NoLossRegion {
                    rect: subscriptions[i].clone(),
                    subscribers: u,
                    weight,
                }
            })
        };
        sort_by_weight(&mut pool);
        pool.truncate(config.max_rects);
        // The base regions are re-inserted after every truncation:
        // deep, heavy intersections must not evict the broad regions
        // that give the final selection its event coverage.
        let base: Vec<NoLossRegion> = pool.clone();

        // Intersection rounds.
        for _ in 0..config.iterations {
            let tree = RTree::bulk_load(
                dim,
                pool.iter()
                    .enumerate()
                    .map(|(i, r)| (r.rect.clone(), i))
                    .collect(),
            );
            let mut seen: HashMap<Vec<(u64, u64)>, usize> = pool
                .iter()
                .enumerate()
                .map(|(i, r)| (rect_key(&r.rect), i))
                .collect();
            let mut fresh: Vec<NoLossRegion> = Vec::new();
            let mut budget = config.max_candidates_per_round;
            'outer: for i in 0..pool.len() {
                for (_, &j) in tree.query_intersecting(&pool[i].rect) {
                    if j <= i {
                        continue;
                    }
                    if budget == 0 {
                        break 'outer;
                    }
                    budget -= 1;
                    let inter = match pool[i].rect.intersection(&pool[j].rect) {
                        Some(r) => r,
                        None => continue,
                    };
                    let mut u = pool[i].subscribers.clone();
                    u.union_with(&pool[j].subscribers);
                    let key = rect_key(&inter);
                    match seen.get(&key) {
                        Some(&idx) if idx < pool.len() => {
                            // Refine an existing pool region's membership.
                            let region = &mut pool[idx];
                            if !u.is_subset(&region.subscribers) {
                                region.subscribers.union_with(&u);
                                region.weight = density(&region.rect)
                                    * wcount(&region.subscribers, weights) as f64;
                            }
                        }
                        Some(&idx) => {
                            let fi = idx - pool.len();
                            let region = &mut fresh[fi];
                            if !u.is_subset(&region.subscribers) {
                                region.subscribers.union_with(&u);
                                region.weight = density(&region.rect)
                                    * wcount(&region.subscribers, weights) as f64;
                            }
                        }
                        None => {
                            let weight = density(&inter) * wcount(&u, weights) as f64;
                            seen.insert(key, pool.len() + fresh.len());
                            fresh.push(NoLossRegion {
                                rect: inter,
                                subscribers: u,
                                weight,
                            });
                        }
                    }
                }
            }
            if fresh.is_empty() {
                break;
            }
            pool.extend(fresh);
            sort_by_weight(&mut pool);
            pool.truncate(config.max_rects);
            // Restore any base region the truncation evicted.
            {
                let present: std::collections::HashSet<Vec<(u64, u64)>> =
                    pool.iter().map(|r| rect_key(&r.rect)).collect();
                for b in &base {
                    if !present.contains(&rect_key(&b.rect)) {
                        pool.push(b.clone());
                    }
                }
            }
            // Re-verify exact containment sets for the surviving pool:
            // the pairwise union `u(s)∪u(t)` is a sound but lossy
            // under-approximation of `u(s∩t)` (a third subscriber's
            // rectangle may contain the intersection without containing
            // either parent). Exact recomputation here is cheap —
            // `max_rects · n` containment tests, one region per thread
            // chunk — and lets weights and the final group memberships
            // match the paper's definition.
            let refreshed = parallel::par_map(&pool, 16, |region| {
                let u = exact_containment(&region.rect, subscriptions);
                let weight = density(&region.rect) * wcount(&u, weights) as f64;
                (u, weight)
            });
            for (region, (u, weight)) in pool.iter_mut().zip(refreshed) {
                region.subscribers = u;
                region.weight = weight;
            }
            sort_by_weight(&mut pool);
        }

        // Final group selection: greedy marginal coverage over the
        // sample (top-K by weight when no sample is available).
        sort_by_weight(&mut pool);
        if selection_sample.is_empty() {
            pool.truncate(k);
        } else {
            pool = greedy_coverage_selection(pool, selection_sample, k, weights);
        }
        let tree = RTree::bulk_load(
            dim.max(1),
            pool.iter()
                .enumerate()
                .map(|(i, r)| (r.rect.clone(), i))
                .collect(),
        );
        let counts = pool
            .iter()
            .map(|r| wcount(&r.subscribers, weights) as u32)
            .collect();
        NoLossClustering {
            regions: pool,
            tree,
            counts,
        }
    }

    /// The kept regions, heaviest first.
    pub fn regions(&self) -> &[NoLossRegion] {
        &self.regions
    }

    /// Number of multicast groups.
    pub fn num_groups(&self) -> usize {
        self.regions.len()
    }

    /// Matches an event to the best region containing it (Figure 6 of
    /// the paper): the message is multicast to that region's
    /// subscribers and unicast to any other interested subscriber.
    ///
    /// The paper's pseudo-code selects the containing region of maximal
    /// weight `w = p_p·|u|`; since every subscriber of a containing
    /// region is interested in this event, delivery cost is minimized
    /// by the region with the *largest membership* (moving a receiver
    /// from the unicast top-up into the shared tree never costs more).
    /// We therefore break the selection by `|u|` first, weight second —
    /// identical when density is comparable, strictly better otherwise.
    ///
    /// Allocation-free: the containing regions are visited in place
    /// (no candidate `Vec`) and member counts were precomputed at build
    /// time. The comparator is a strict total order over distinct
    /// indices (count, then weight, then *lower index* on ties), so the
    /// maximum is unique and the fold below is independent of the
    /// R-tree's visitation order.
    pub fn match_event(&self, p: &Point) -> Option<usize> {
        let mut best: Option<usize> = None;
        self.tree.stab_with(p, |&i| {
            best = Some(match best {
                None => i,
                Some(b) if self.region_beats(i, b) => i,
                Some(b) => b,
            });
        });
        best
    }

    /// Whether region `a` wins the matcher's selection over region `b`
    /// (larger member count, then larger weight, then lower index).
    fn region_beats(&self, a: usize, b: usize) -> bool {
        self.counts[a]
            .cmp(&self.counts[b])
            .then_with(|| {
                self.regions[a]
                    .weight
                    .partial_cmp(&self.regions[b].weight)
                    .expect("weight is never NaN")
            })
            .then(b.cmp(&a))
            .is_gt()
    }

    /// Visits the index of every region containing `p`, in the R-tree's
    /// traversal order. Used by the compiled dispatch plan.
    pub(crate) fn stab_regions_with(&self, p: &Point, mut visit: impl FnMut(usize)) {
        self.tree.stab_with(p, |&i| visit(i));
    }
}

/// Greedy submodular selection: pick `k` regions maximizing the total
/// expected covered membership over the sample. A sample point covered
/// by several picked regions counts its best (largest-membership)
/// cover, mirroring the matcher's choice.
fn greedy_coverage_selection(
    pool: Vec<NoLossRegion>,
    sample: &[Point],
    k: usize,
    weights: Option<&[u64]>,
) -> Vec<NoLossRegion> {
    // Containment lists: which sample points each region contains
    // (independent per region, so computed in parallel).
    let contained: Vec<Vec<usize>> = parallel::par_map(&pool, 16, |r| {
        sample
            .iter()
            .enumerate()
            .filter(|(_, p)| r.rect.contains(p))
            .map(|(i, _)| i)
            .collect()
    });
    let sizes: Vec<u64> = pool
        .iter()
        .map(|r| wcount(&r.subscribers, weights))
        .collect();
    let mut best_cov = vec![0u64; sample.len()];
    let mut picked = vec![false; pool.len()];
    let mut order = Vec::with_capacity(k.min(pool.len()));
    for _ in 0..k.min(pool.len()) {
        let mut best: Option<(f64, usize)> = None;
        for (r, pts) in contained.iter().enumerate() {
            if picked[r] {
                continue;
            }
            let gain: u64 = pts
                .iter()
                .map(|&p| sizes[r].saturating_sub(best_cov[p]))
                .sum();
            let gain = gain as f64;
            // Tie-break on weight, then pool order (weight-sorted), for
            // determinism and sane behaviour when all gains are zero.
            let key = gain + pool[r].weight * 1e-9;
            if best.is_none_or(|(bg, _)| key > bg) {
                best = Some((key, r));
            }
        }
        let (_, r) = match best {
            Some(b) => b,
            None => break,
        };
        picked[r] = true;
        for &p in &contained[r] {
            best_cov[p] = best_cov[p].max(sizes[r]);
        }
        order.push(r);
    }
    let keep: std::collections::HashSet<usize> = order.into_iter().collect();
    pool.into_iter()
        .enumerate()
        .filter(|(i, _)| keep.contains(i))
        .map(|(_, r)| r)
        .collect()
}

fn sort_by_weight(pool: &mut [NoLossRegion]) {
    pool.sort_by(|a, b| {
        b.weight
            .partial_cmp(&a.weight)
            .expect("weight is never NaN")
            .then_with(|| {
                // Deterministic tie-break on the rectangle bits.
                rect_key(&a.rect).cmp(&rect_key(&b.rect))
            })
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::Interval;

    fn rect1(lo: f64, hi: f64) -> Rect {
        Rect::new(vec![Interval::new(lo, hi).unwrap()])
    }

    fn cfg(max_rects: usize, iterations: usize) -> NoLossConfig {
        NoLossConfig {
            max_rects,
            iterations,
            max_candidates_per_round: 100_000,
        }
    }

    #[test]
    fn empty_input() {
        let nl = NoLossClustering::build(&[], &[], &NoLossConfig::default(), 5);
        assert_eq!(nl.num_groups(), 0);
        assert_eq!(nl.match_event(&Point::new(vec![0.0])), None);
    }

    #[test]
    fn no_loss_property_holds() {
        // Every subscriber of every region must have a rectangle that
        // contains the whole region.
        let subs = vec![
            rect1(0.0, 10.0),
            rect1(5.0, 15.0),
            rect1(8.0, 9.0),
            rect1(2.0, 20.0),
        ];
        let sample: Vec<Point> = (0..40).map(|i| Point::new(vec![i as f64 * 0.5])).collect();
        let nl = NoLossClustering::build(&subs, &sample, &cfg(100, 4), 50);
        assert!(nl.num_groups() > 0);
        for region in nl.regions() {
            for s in region.subscribers.iter() {
                assert!(
                    subs[s].contains_rect(&region.rect),
                    "subscriber {s} does not contain region {}",
                    region.rect
                );
            }
        }
    }

    #[test]
    fn intersections_gain_members() {
        let subs = vec![rect1(0.0, 10.0), rect1(5.0, 15.0)];
        let sample = vec![Point::new(vec![7.0])];
        let nl = NoLossClustering::build(&subs, &sample, &cfg(100, 2), 10);
        // Some region must be the overlap (5,10] with both subscribers.
        let both = nl
            .regions()
            .iter()
            .find(|r| r.subscribers.count() == 2)
            .expect("intersection region exists");
        assert_eq!(both.rect, rect1(5.0, 10.0));
    }

    #[test]
    fn match_event_picks_heaviest_region() {
        let subs = vec![rect1(0.0, 10.0), rect1(5.0, 15.0), rect1(6.0, 9.0)];
        // Density concentrated at 7: deep intersections get heavy.
        let sample = vec![Point::new(vec![7.0]); 10];
        let nl = NoLossClustering::build(&subs, &sample, &cfg(100, 4), 20);
        let hit = nl.match_event(&Point::new(vec![7.0])).unwrap();
        // The triple intersection (6,9] carries all three subscribers
        // and full density: it must win.
        assert_eq!(nl.regions()[hit].subscribers.count(), 3);
        assert_eq!(nl.regions()[hit].rect, rect1(6.0, 9.0));
    }

    #[test]
    fn match_event_outside_all_regions_is_none() {
        let subs = vec![rect1(0.0, 1.0)];
        let nl = NoLossClustering::build(&subs, &[], &cfg(10, 1), 5);
        assert_eq!(nl.match_event(&Point::new(vec![50.0])), None);
    }

    #[test]
    fn k_truncates_to_heaviest() {
        let subs = vec![
            rect1(0.0, 10.0),
            rect1(0.0, 10.0),
            rect1(0.0, 10.0),
            rect1(90.0, 91.0),
        ];
        let sample = vec![Point::new(vec![5.0]); 5];
        let nl = NoLossClustering::build(&subs, &sample, &cfg(100, 2), 1);
        assert_eq!(nl.num_groups(), 1);
        // The popular shared rectangle wins over the lonely one.
        assert_eq!(nl.regions()[0].subscribers.count(), 3);
    }

    #[test]
    fn duplicate_rectangles_share_one_region() {
        let subs = vec![rect1(0.0, 5.0), rect1(0.0, 5.0)];
        let nl = NoLossClustering::build(&subs, &[], &cfg(10, 1), 10);
        // One region, two members.
        assert_eq!(nl.num_groups(), 1);
        assert_eq!(nl.regions()[0].subscribers.count(), 2);
    }

    #[test]
    fn more_iterations_never_lose_the_top_region() {
        let subs = vec![
            rect1(0.0, 10.0),
            rect1(2.0, 12.0),
            rect1(4.0, 14.0),
            rect1(6.0, 16.0),
        ];
        let sample: Vec<Point> = (0..32).map(|i| Point::new(vec![i as f64 * 0.5])).collect();
        let shallow = NoLossClustering::build(&subs, &sample, &cfg(100, 1), 100);
        let deep = NoLossClustering::build(&subs, &sample, &cfg(100, 4), 100);
        let max_members = |nl: &NoLossClustering| {
            nl.regions()
                .iter()
                .map(|r| r.subscribers.count())
                .max()
                .unwrap_or(0)
        };
        // Deeper iteration can only find richer (or equal) intersections.
        assert!(max_members(&deep) >= max_members(&shallow));
        // The 4-way core (6,10] must appear after enough iterations.
        assert_eq!(max_members(&deep), 4);
    }
}
