//! Dependency-free deterministic parallelism.
//!
//! Every hot loop in this workspace — distance-matrix fill, K-means
//! assignment sweeps, pairwise-grouping scans, per-event delivery
//! evaluation — fans out through the two primitives here, built on
//! [`std::thread::scope`] so no runtime or external crate is needed.
//!
//! # Determinism contract
//!
//! All results are **bit-for-bit identical for any thread count**:
//!
//! * [`par_map_indexed`] / [`par_map`] produce element-wise outputs placed
//!   by index, so scheduling order is invisible.
//! * [`par_chunks`] decomposes `0..n` into *fixed-size* chunks whose
//!   boundaries depend only on `n` and `chunk_size` — never on the thread
//!   count — and returns per-chunk results in chunk order. Callers that
//!   reduce floating-point partials combine them serially in that order,
//!   so non-associative `f64` addition still yields identical sums at any
//!   parallelism level.
//!
//! Work is claimed dynamically (an atomic chunk counter), which load
//! balances skewed chunks without affecting outputs.
//!
//! # Thread-count selection
//!
//! [`num_threads`] resolves, in order: the [`with_threads`] scoped
//! override (used by tests and the `perf` bench binary — it is
//! thread-local, so concurrent `cargo test` threads cannot race each
//! other), the `PUBSUB_THREADS` environment variable (read once per
//! process), and finally [`std::thread::available_parallelism`]. Small
//! inputs fall back to the serial path so tiny tests never pay thread
//! spawn cost; workers run nested parallel calls serially rather than
//! oversubscribing.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Inputs shorter than this run serially in [`par_map_indexed`] /
/// [`par_map`] unless the caller passes an explicit grain.
pub const MIN_PARALLEL_LEN: usize = 64;

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        crate::env_knob("PUBSUB_THREADS", None, |s| {
            s.parse::<usize>().ok().filter(|&n| n > 0).map(Some)
        })
    })
}

/// The effective worker count for parallel regions started on this
/// thread: [`with_threads`] override, else `PUBSUB_THREADS`, else
/// [`std::thread::available_parallelism`].
pub fn num_threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(|o| o.get()) {
        return n.max(1);
    }
    if let Some(n) = env_threads() {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f` with the calling thread's parallelism pinned to `n`.
///
/// The override is thread-local and restored on exit (even on panic), so
/// concurrent tests can pin different thread counts without racing on the
/// process environment. Used by the determinism suite and the `perf` bin.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let prev = THREAD_OVERRIDE.with(|o| o.replace(Some(n.max(1))));
    let _restore = Restore(prev);
    f()
}

fn run_serial_chunks<A, F>(n: usize, chunk_size: usize, f: F) -> Vec<A>
where
    F: Fn(Range<usize>) -> A,
{
    let num_chunks = n.div_ceil(chunk_size);
    (0..num_chunks)
        .map(|c| f(c * chunk_size..((c + 1) * chunk_size).min(n)))
        .collect()
}

/// Applies `f` to fixed-size chunks of `0..n`, in parallel, returning the
/// per-chunk results **in chunk order**.
///
/// Chunk boundaries depend only on `n` and `chunk_size`, so reductions
/// that fold the returned partials left-to-right are bit-identical for
/// any thread count. This is the primitive behind every floating-point
/// reduction in the workspace.
pub fn par_chunks<A, F>(n: usize, chunk_size: usize, f: F) -> Vec<A>
where
    A: Send,
    F: Fn(Range<usize>) -> A + Sync,
{
    let chunk_size = chunk_size.max(1);
    let num_chunks = n.div_ceil(chunk_size);
    let threads = num_threads().min(num_chunks);
    if threads <= 1 {
        return run_serial_chunks(n, chunk_size, f);
    }

    let next = AtomicUsize::new(0);
    let f = &f;
    let mut per_thread: Vec<Vec<(usize, A)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                // lint: allow(thread-panic): a worker panic propagates
                // through `thread::scope`'s implicit join and re-raises
                // on the caller thread before any partial result is
                // observable.
                scope.spawn(move || {
                    // Nested parallel calls inside a worker run serially:
                    // the outer region already owns the cores.
                    with_threads(1, || {
                        let mut local = Vec::new();
                        loop {
                            // lint: allow(atomic-order): work-stealing
                            // ticket counter; the RMW's atomicity alone
                            // guarantees each chunk index is claimed
                            // once, no data is published through it,
                            // and results are reordered by index after
                            // the scope joins.
                            let c = next.fetch_add(1, Ordering::Relaxed);
                            if c >= num_chunks {
                                break;
                            }
                            let range = c * chunk_size..((c + 1) * chunk_size).min(n);
                            local.push((c, f(range)));
                        }
                        local
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    let mut out: Vec<Option<A>> = (0..num_chunks).map(|_| None).collect();
    for (c, a) in per_thread.drain(..).flatten() {
        debug_assert!(out[c].is_none(), "chunk {c} produced twice");
        out[c] = Some(a);
    }
    out.into_iter()
        .map(|a| a.expect("chunk not produced"))
        .collect()
}

/// Maps `f` over `0..n` in parallel; `out[i] == f(i)` exactly as in the
/// serial loop. Runs serially when `n < min_len` or one thread is
/// available.
pub fn par_map_indexed<R, F>(n: usize, min_len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = num_threads();
    if threads <= 1 || n < min_len.max(2) {
        return (0..n).map(f).collect();
    }
    // ~4 chunks per thread keeps skewed workloads balanced; since outputs
    // are element-wise, the thread-dependent chunking is invisible.
    let chunk = n.div_ceil(threads * 4).max(1);
    par_chunks(n, chunk, |range| range.map(&f).collect::<Vec<R>>())
        .into_iter()
        .flatten()
        .collect()
}

/// Maps `f` over a slice in parallel; `out[i] == f(&items[i])`.
pub fn par_map<T, R, F>(items: &[T], min_len: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items.len(), min_len, |i| f(&items[i]))
}

/// Maps `f` over an *owned* vector in parallel; `out[i] == f(items[i])`
/// exactly as in the serial loop. This is the by-value sibling of
/// [`par_map`], for elements too large (or too non-`Sync`) to process
/// behind a shared reference — e.g. whole aggregation shards being
/// rebuilt in place. Under `#![forbid(unsafe_code)]` ownership is
/// handed to workers through per-slot mutexes; each slot is taken
/// exactly once, so the locks never contend.
pub fn par_map_vec<T, R, F>(items: Vec<T>, min_len: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if num_threads() <= 1 || n < min_len.max(2) {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    par_map_indexed(n, 1, |i| {
        let taken = slots[i]
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .take();
        f(taken.expect("each slot is taken exactly once"))
    })
}

/// Sums `f(i)` over `0..n` with a fixed `chunk_size` decomposition, so
/// the result is bit-identical for any thread count (partial sums are
/// combined in chunk order).
pub fn par_sum_f64<F>(n: usize, chunk_size: usize, f: F) -> f64
where
    F: Fn(usize) -> f64 + Sync,
{
    if n == 0 {
        return 0.0;
    }
    par_chunks(n, chunk_size, |range| {
        let mut acc = 0.0;
        for i in range {
            acc += f(i);
        }
        acc
    })
    .into_iter()
    .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_serial() {
        let items: Vec<usize> = (0..1000).collect();
        let serial: Vec<usize> = items.iter().map(|&x| x * x).collect();
        for threads in [1, 2, 3, 8] {
            let par = with_threads(threads, || par_map(&items, 1, |&x| x * x));
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn par_chunks_preserves_order_and_boundaries() {
        for threads in [1, 2, 7] {
            let ranges = with_threads(threads, || par_chunks(10, 3, |r| (r.start, r.end)));
            assert_eq!(ranges, vec![(0, 3), (3, 6), (6, 9), (9, 10)]);
        }
    }

    #[test]
    fn f64_sum_is_bit_identical_across_thread_counts() {
        // A sum whose value depends on association order if chunking
        // were thread-dependent.
        let f = |i: usize| ((i as f64) * 0.1).sin() * 1e-3 + 1e9 * ((i % 7) as f64);
        let reference = with_threads(1, || par_sum_f64(10_000, 128, f));
        for threads in [2, 3, 8, 16] {
            let sum = with_threads(threads, || par_sum_f64(10_000, 128, f));
            assert_eq!(sum.to_bits(), reference.to_bits(), "threads = {threads}");
        }
    }

    #[test]
    fn par_map_vec_matches_serial_and_moves_ownership() {
        let make = || (0..100).map(|i| vec![i; 3]).collect::<Vec<_>>();
        let serial: Vec<usize> = make().into_iter().map(|v| v.iter().sum()).collect();
        for threads in [1, 2, 8] {
            let par = with_threads(threads, || {
                par_map_vec(make(), 1, |v: Vec<usize>| v.iter().sum::<usize>())
            });
            assert_eq!(par, serial, "threads = {threads}");
        }
        assert!(par_map_vec(Vec::<u8>::new(), 1, |b| b).is_empty());
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(par_map_indexed(0, 1, |i| i).is_empty());
        assert_eq!(par_sum_f64(0, 16, |_| 1.0), 0.0);
        assert_eq!(par_map_indexed(1, 64, |i| i + 1), vec![1]);
        let chunks = par_chunks(5, 100, |r| r.len());
        assert_eq!(chunks, vec![5]);
    }

    #[test]
    fn with_threads_restores_on_exit() {
        let outer = num_threads();
        with_threads(3, || {
            assert_eq!(num_threads(), 3);
            with_threads(1, || assert_eq!(num_threads(), 1));
            assert_eq!(num_threads(), 3);
        });
        assert_eq!(num_threads(), outer);
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_map_indexed(100, 1, |i| {
                    if i == 57 {
                        panic!("boom");
                    }
                    i
                })
            })
        });
        assert!(result.is_err());
    }
}
