//! Subscription aggregation: canonical subscription classes, the
//! aggregated dispatch plan and axis-selected sharding (DESIGN.md §15
//! and §16).
//!
//! At a million subscribers the concrete population is dominated by
//! near-duplicates: popular interest specifications are submitted by
//! many subscribers verbatim. [`Aggregation`] collapses identical
//! rectangles into *canonical classes* before rasterization, keeping a
//! reverse map `class → packed concrete-subscriber list` used only at
//! delivery time. The class universe — typically orders of magnitude
//! smaller — is clustered with per-class multiplicities (the weighted
//! framework build), producing decisions bit-identical to clustering
//! the expanded concrete population.
//!
//! [`AggregatePlan`] compiles a class framework + clustering into the
//! serve path: locate the event's cell, filter the cell's *classes* by
//! per-variant rectangle containment, expand the surviving variants'
//! packed member lists into the exact concrete interested set, and make
//! the threshold decision on weighted counts (the same integers the
//! concrete plan computes, hence the same `f64` comparison).
//!
//! [`ShardedAggregate`] splits the grid into contiguous bin-aligned
//! slabs along a selectivity-chosen axis (`PUBSUB_AGG_SHARD_DIM`),
//! each with its own sub-framework and plan, so churn touches the
//! overlapped shards instead of rebuilding the whole structure. Shards
//! are independent, so both the initial build and churn refresh fan
//! out across the scoped-thread pool — bit-identical at any
//! `PUBSUB_THREADS` (DESIGN.md §16).

use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

use geometry::{CellId, Grid, Interval, Point, Rect};

use crate::clustering::{Clustering, ClusteringAlgorithm};
use crate::dispatch::DispatchPlan;
use crate::framework::{CellProbability, GridFramework};
use crate::knob::env_knob;
use crate::match_index::SubscriptionIndex;
use crate::matching::Delivery;
use crate::parallel;
use crate::validate::Validator;

/// Bit-pattern identity key of a rectangle: `(lo, hi)` bits per
/// dimension. Two rectangles with equal keys rasterize, match and
/// cluster identically in every context.
pub(crate) fn rect_key(r: &Rect) -> Vec<(u64, u64)> {
    r.intervals()
        .iter()
        .map(|iv| (iv.lo().to_bits(), iv.hi().to_bits()))
        .collect()
}

fn parse_bool(s: &str) -> Option<bool> {
    match s {
        "1" | "true" | "yes" | "on" => Some(true),
        "0" | "false" | "no" | "off" => Some(false),
        _ => None,
    }
}

/// Whether cell-set canonicalization (tier 2) is enabled.
fn cell_canon_enabled() -> bool {
    env_knob("PUBSUB_AGG_CELL_CANON", false, parse_bool)
}

/// Canonicalized subscription population: concrete subscriptions
/// collapsed into classes of identical rectangles (tier 1) and,
/// optionally, classes of identical rasterized cell sets (tier 2,
/// behind `PUBSUB_AGG_CELL_CANON`).
///
/// A *variant* is one distinct rectangle bit-pattern; a *class* is one
/// clustering slot. Under tier 1 every class holds exactly one variant.
/// Under tier 2 a class may hold several variants whose rectangles
/// differ but overlap the same grid cells — delivery then tests each
/// variant's own rectangle, so interested sets stay exact.
///
/// # Examples
///
/// ```
/// use geometry::{Interval, Rect};
/// use pubsub_core::Aggregation;
///
/// let subs = vec![
///     Rect::new(vec![Interval::new(0.0, 5.0)?]),
///     Rect::new(vec![Interval::new(2.0, 9.0)?]),
///     Rect::new(vec![Interval::new(0.0, 5.0)?]), // duplicate of #0
/// ];
/// let agg = Aggregation::build(&subs);
/// assert_eq!(agg.num_classes(), 2);
/// assert_eq!(agg.weights(), &[2, 1]);
/// # Ok::<(), geometry::IntervalError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Aggregation {
    num_concrete: usize,
    /// Concrete subscriber → class.
    class_of: Vec<u32>,
    /// Class → concrete multiplicity (sum of its variants' weights).
    weights: Vec<u64>,
    /// Class → its variants, `variant_offsets[c] .. variant_offsets[c+1]`.
    variant_offsets: Vec<u32>,
    /// Variant → distinct rectangle.
    variant_rects: Vec<Rect>,
    /// Variant → concrete multiplicity.
    variant_weights: Vec<u64>,
    /// Variant → packed concrete subscriber ids, ascending.
    variant_members: Vec<Vec<u32>>,
    /// Variant → owning class.
    variant_class: Vec<u32>,
    /// Rectangle bit-pattern → variant, for churn-time lookups.
    class_index: HashMap<Vec<(u64, u64)>, u32>,
}

impl Aggregation {
    /// Canonicalizes by exact rectangle identity (tier 1): concrete
    /// subscriptions with bit-identical rectangles form one class, in
    /// first-occurrence order.
    pub fn build(subscriptions: &[Rect]) -> Self {
        let n = subscriptions.len();
        let mut class_index: HashMap<Vec<(u64, u64)>, u32> = HashMap::with_capacity(n);
        let mut class_of = Vec::with_capacity(n);
        let mut variant_rects: Vec<Rect> = Vec::new();
        let mut variant_weights: Vec<u64> = Vec::new();
        let mut variant_members: Vec<Vec<u32>> = Vec::new();
        for (i, sub) in subscriptions.iter().enumerate() {
            let c = *class_index.entry(rect_key(sub)).or_insert_with(|| {
                variant_rects.push(sub.clone());
                variant_weights.push(0);
                variant_members.push(Vec::new());
                (variant_rects.len() - 1) as u32
            });
            class_of.push(c);
            variant_weights[c as usize] += 1;
            variant_members[c as usize].push(i as u32);
        }
        let num_classes = variant_rects.len();
        Aggregation {
            num_concrete: n,
            class_of,
            weights: variant_weights.clone(),
            variant_offsets: (0..=num_classes as u32).collect(),
            variant_rects,
            variant_weights,
            variant_members,
            variant_class: (0..num_classes as u32).collect(),
            class_index,
        }
    }

    /// Tier-1 canonicalization, then — when `PUBSUB_AGG_CELL_CANON` is
    /// enabled — a second pass merging variants whose rectangles
    /// overlap exactly the same cells of `grid` into one class.
    ///
    /// Cell-set classes are sound only when the serving grid equals the
    /// canonicalization grid (shard sub-grids recompute cell edges, so
    /// a variant's cell set there could in principle drift by one
    /// cell); [`ShardedAggregate`] should therefore be fed a tier-1
    /// aggregation, which is the knob's default.
    pub fn build_with_grid(subscriptions: &[Rect], grid: &Grid) -> Self {
        let t1 = Self::build(subscriptions);
        if !cell_canon_enabled() {
            return t1;
        }
        t1.cell_canonicalize(grid)
    }

    /// Regroups tier-1 variants by identical rasterized cell set.
    fn cell_canonicalize(mut self, grid: &Grid) -> Self {
        let nv = self.variant_rects.len();
        let cell_sets: Vec<Vec<CellId>> =
            parallel::par_map(&self.variant_rects, parallel::MIN_PARALLEL_LEN, |r| {
                grid.cells_overlapping(r)
            });
        // Group variants by cell set, classes in first-occurrence order.
        let mut by_cells: HashMap<Vec<CellId>, u32> = HashMap::with_capacity(nv);
        let mut classes: Vec<Vec<u32>> = Vec::new();
        let mut class_of_variant = vec![0u32; nv];
        for (v, cells) in cell_sets.into_iter().enumerate() {
            let c = *by_cells.entry(cells).or_insert_with(|| {
                classes.push(Vec::new());
                (classes.len() - 1) as u32
            });
            classes[c as usize].push(v as u32);
            class_of_variant[v] = c;
        }
        // Reorder variants so each class's variants are contiguous.
        let mut variant_rects = Vec::with_capacity(nv);
        let mut variant_weights = Vec::with_capacity(nv);
        let mut variant_members = Vec::with_capacity(nv);
        let mut variant_class = Vec::with_capacity(nv);
        let mut variant_offsets = Vec::with_capacity(classes.len() + 1);
        variant_offsets.push(0u32);
        let mut weights = vec![0u64; classes.len()];
        let mut new_variant_of_old = vec![0u32; nv];
        for (c, vs) in classes.iter().enumerate() {
            for &v in vs {
                let v = v as usize;
                new_variant_of_old[v] = variant_rects.len() as u32;
                variant_rects.push(self.variant_rects[v].clone());
                variant_weights.push(self.variant_weights[v]);
                variant_members.push(std::mem::take(&mut self.variant_members[v]));
                variant_class.push(c as u32);
                weights[c] += self.variant_weights[v];
            }
            variant_offsets.push(variant_rects.len() as u32);
        }
        // In tier 1 a class id *is* its variant id, so the concrete map
        // composes directly with the variant regrouping.
        let class_of = self
            .class_of
            .iter()
            .map(|&old| class_of_variant[old as usize])
            .collect();
        let class_index = self
            .class_index
            // lint: allow(hash-order): value remap only, rebuilt into a map
            .into_iter()
            .map(|(k, v)| (k, new_variant_of_old[v as usize]))
            .collect();
        Aggregation {
            num_concrete: self.num_concrete,
            class_of,
            weights,
            variant_offsets,
            variant_rects,
            variant_weights,
            variant_members,
            variant_class,
            class_index,
        }
    }

    /// Number of concrete subscriptions the aggregation was built from.
    pub fn num_concrete(&self) -> usize {
        self.num_concrete
    }

    /// Number of canonical classes (clustering slots).
    pub fn num_classes(&self) -> usize {
        self.weights.len()
    }

    /// Number of distinct rectangle variants.
    pub fn num_variants(&self) -> usize {
        self.variant_rects.len()
    }

    /// Per-class concrete multiplicities.
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }

    /// The class of concrete subscriber `i`.
    pub fn class_of(&self) -> &[u32] {
        &self.class_of
    }

    /// The distinct rectangles, one per variant.
    pub fn variant_rects(&self) -> &[Rect] {
        &self.variant_rects
    }

    /// Concrete subscriptions per class — the aggregation ratio. `1.0`
    /// means nothing aggregated; large values mean heavy duplication.
    pub fn ratio(&self) -> f64 {
        if self.num_classes() == 0 {
            1.0
        } else {
            self.num_concrete as f64 / self.num_classes() as f64
        }
    }

    /// The variants of `class`.
    fn variants_of(&self, class: usize) -> Range<usize> {
        self.variant_offsets[class] as usize..self.variant_offsets[class + 1] as usize
    }

    /// One representative rectangle per class (the first variant's).
    /// Under tier 1 this is exactly the distinct-rectangle list.
    pub fn class_rects(&self) -> Vec<Rect> {
        (0..self.num_classes())
            .map(|c| self.variant_rects[self.variant_offsets[c] as usize].clone())
            .collect()
    }

    /// Appends the concrete subscriber ids of `class` to `out`.
    pub fn expand_class_into(&self, class: usize, out: &mut Vec<usize>) {
        for v in self.variants_of(class) {
            out.extend(self.variant_members[v].iter().map(|&i| i as usize));
        }
    }

    /// Builds the class-universe framework: one slot per class, ranked
    /// and clustered with the class multiplicities, bit-identical to
    /// building over the expanded concrete population.
    ///
    /// Tombstoned classes (weight 0, every concrete member removed)
    /// rasterize to *empty* cell sets: they stand for no live
    /// subscriber, so a cold rebuild excludes their bits exactly as the
    /// churn path clears them from live frameworks.
    pub fn build_framework(
        &self,
        grid: Grid,
        probs: &CellProbability,
        max_cells: Option<usize>,
    ) -> GridFramework {
        let class_rects = self.class_rects();
        let cell_sets: Vec<Vec<CellId>> =
            parallel::par_map_indexed(class_rects.len(), parallel::MIN_PARALLEL_LEN, |c| {
                if self.weights[c] == 0 {
                    Vec::new()
                } else {
                    grid.cells_overlapping(&class_rects[c])
                }
            });
        GridFramework::build_weighted_from_cells(
            grid,
            &cell_sets,
            Arc::new(self.weights.clone()),
            probs,
            max_cells,
        )
    }
}

/// Reusable per-thread buffers for [`AggregatePlan::serve`].
#[derive(Debug, Default)]
pub struct AggregateScratch {
    interested: Vec<usize>,
    variant_hits: Vec<usize>,
}

impl AggregateScratch {
    /// Creates empty scratch buffers.
    pub fn new() -> Self {
        AggregateScratch::default()
    }

    /// The concrete interested subscriber ids of the last
    /// [`AggregatePlan::serve`] call, in increasing order.
    pub fn interested(&self) -> &[usize] {
        &self.interested
    }
}

/// A dispatch plan over a class-universe framework: decisions use
/// weighted class counts (the same integers the concrete plan computes)
/// and interested sets are expanded from the aggregation's packed
/// member lists — exact per concrete subscriber.
#[derive(Debug, Clone)]
pub struct AggregatePlan {
    plan: DispatchPlan,
    agg: Arc<Aggregation>,
    /// Fallback index over the *variant* rectangles for events outside
    /// every kept cell.
    index: Arc<SubscriptionIndex>,
    /// Per-group concrete (weighted) size.
    group_wsize: Vec<u64>,
}

impl AggregatePlan {
    /// Compiles the plan from a class framework, its clustering and the
    /// aggregation that produced the framework.
    ///
    /// # Panics
    ///
    /// Panics if the framework's subscriber universe exceeds the
    /// aggregation's class count, if the clustering was not built over
    /// `framework`, or if `threshold` is outside `[0, 1]`.
    pub fn compile(
        framework: &GridFramework,
        clustering: &Clustering,
        threshold: f64,
        aggregation: Arc<Aggregation>,
    ) -> Self {
        let index = Arc::new(SubscriptionIndex::build(&aggregation.variant_rects));
        Self::compile_with_index(framework, clustering, threshold, aggregation, index)
    }

    /// [`AggregatePlan::compile`] with a shared variant index —
    /// [`ShardedAggregate`] builds the index once for all shards.
    pub(crate) fn compile_with_index(
        framework: &GridFramework,
        clustering: &Clustering,
        threshold: f64,
        aggregation: Arc<Aggregation>,
        index: Arc<SubscriptionIndex>,
    ) -> Self {
        // `<=` rather than `==`: after churn a shard untouched by the
        // new classes keeps its smaller class universe (see
        // `ShardedAggregate::apply_churn`).
        assert!(
            framework.num_subscribers() <= aggregation.num_classes(),
            "framework universe exceeds the aggregation's class count"
        );
        let plan = DispatchPlan::compile(framework, clustering).with_threshold(threshold);
        let group_wsize = clustering
            .groups()
            .iter()
            .map(|g| g.members.iter().map(|c| aggregation.weights[c]).sum())
            .collect();
        AggregatePlan {
            plan,
            agg: aggregation,
            index,
            group_wsize,
        }
    }

    /// The configured threshold.
    pub fn threshold(&self) -> f64 {
        self.plan.threshold
    }

    /// Number of compiled groups.
    pub fn num_groups(&self) -> usize {
        self.group_wsize.len()
    }

    // lint: hot-path
    /// Serves one event: computes the exact concrete interested set
    /// (into `scratch`, ascending) and the delivery decision.
    ///
    /// Candidates are the event cell's *classes*; each class's variants
    /// are filtered by their own rectangle, so tier-2 classes (merged
    /// cell sets, different rectangles) still deliver exactly. The
    /// threshold compares `weighted hits / weighted group size` — the
    /// same integers, hence the same `f64`s, as the concrete
    /// [`DispatchPlan::serve`].
    ///
    /// # Panics
    ///
    /// Panics if `p`'s dimension differs from the grid's.
    pub fn serve(&self, p: &Point, scratch: &mut AggregateScratch) -> Delivery {
        match self.plan.locate(p) {
            Some(slot) => {
                scratch.interested.clear();
                let s = slot as usize;
                let range =
                    self.plan.hyper_offsets[s] as usize..self.plan.hyper_offsets[s + 1] as usize;
                let group = self.plan.hyper_group[s] as usize;
                let mut whits = 0u64;
                for &class in &self.plan.hyper_members[range] {
                    let c = class as usize;
                    let in_group = self.plan.group_contains(group, c);
                    for v in self.agg.variants_of(c) {
                        if self.agg.variant_rects[v].contains(p) {
                            scratch
                                .interested
                                .extend(self.agg.variant_members[v].iter().map(|&i| i as usize));
                            if in_group {
                                whits += self.agg.variant_weights[v];
                            }
                        }
                    }
                }
                scratch.interested.sort_unstable();
                let wsize = self.group_wsize[group];
                if wsize == 0 {
                    return Delivery::Unicast;
                }
                let proportion = whits as f64 / wsize as f64;
                if proportion >= self.plan.threshold && whits > 0 {
                    Delivery::Multicast { group }
                } else {
                    Delivery::Unicast
                }
            }
            None => {
                // Outside every kept cell: exact variant stab, expanded
                // to concrete ids. Always unicast, as in the concrete
                // plan's fallback.
                self.index.matching_into(p, &mut scratch.variant_hits);
                scratch.interested.clear();
                for &v in &scratch.variant_hits {
                    scratch
                        .interested
                        .extend(self.agg.variant_members[v].iter().map(|&i| i as usize));
                }
                scratch.interested.sort_unstable();
                Delivery::Unicast
            }
        }
    }

    /// Batched [`serve`](Self::serve) over an index range: pushes one
    /// [`Delivery`] per index onto `out` (not cleared). Chunk
    /// boundaries are the caller's, so deterministic chunked
    /// decompositions are preserved.
    pub fn serve_chunk<'a>(
        &self,
        range: Range<usize>,
        point_of: impl Fn(usize) -> &'a Point,
        out: &mut Vec<Delivery>,
        scratch: &mut AggregateScratch,
    ) {
        out.reserve(range.len());
        for e in range {
            out.push(self.serve(point_of(e), scratch));
        }
    }
    // lint: hot-path end
}

/// One shard-axis slab: its sub-grid framework, clustering and plan.
#[derive(Debug)]
struct AggregateShard {
    /// Half-open shard-axis extent `(lo, hi]` of the slab.
    lo: f64,
    hi: f64,
    probs: CellProbability,
    framework: GridFramework,
    clustering: Clustering,
    plan: AggregatePlan,
}

/// Outcome of [`ShardedAggregate::apply_churn`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AggregateChurnReport {
    /// Concrete subscriptions added.
    pub added: usize,
    /// Concrete subscriptions removed.
    pub removed: usize,
    /// Additions that created a brand-new class.
    pub new_classes: usize,
    /// Additions folded into an existing class (weight bump only).
    pub weight_bumps: usize,
    /// Removals that left their class with live members (weight
    /// decrement only).
    pub weight_decrements: usize,
    /// Classes whose last live member was removed this batch — their
    /// bits are cleared from every overlapped shard, and the class slot
    /// is kept so re-adding the identical rectangle revives it.
    pub class_tombstones: usize,
    /// Shards whose framework changed structurally and were
    /// re-clustered.
    pub shards_reclustered: usize,
    /// Shards whose plan was recompiled (superset of the above).
    pub shards_recompiled: usize,
}

/// The aggregated structure sharded into contiguous bin-aligned slabs
/// along one grid axis (`PUBSUB_AGG_SHARDS` slabs, axis from
/// `PUBSUB_AGG_SHARD_DIM` — `auto` scores every dimension and picks
/// the one minimizing cross-slab class replication). Each shard is an
/// independent sub-framework + plan over the full class universe;
/// events route to their slab by the shard-axis coordinate; churn
/// re-clusters only the slabs the changed rectangles overlap. Because
/// shards share no mutable state, both the initial build and the churn
/// refresh fan out across the scoped-thread pool, bit-identically at
/// any thread count.
///
/// With one shard the slab grid equals the full grid, so serving is
/// identical to an unsharded [`AggregatePlan`]. With several shards the
/// per-slab clusterings are a different (equally valid) grouping
/// policy; interested sets remain exact at any shard count.
#[derive(Debug)]
pub struct ShardedAggregate {
    agg: Arc<Aggregation>,
    index: Arc<SubscriptionIndex>,
    shards: Vec<AggregateShard>,
    threshold: f64,
    k: usize,
    /// The grid axis the slabs partition.
    shard_dim: usize,
    /// When set, churn re-runs the delta + re-cluster pipeline on every
    /// *affected* shard even if no class appeared or vanished there, so
    /// hyper-cell popularity ranks track the new weights exactly as a
    /// cold rebuild would (see [`ShardedAggregate::with_strict_recluster`]).
    strict_recluster: bool,
}

/// Scores every grid axis for sharding and returns the best one: the
/// dimension whose bin-aligned slab partition replicates the fewest
/// live class rectangles across slab boundaries (each rectangle costs
/// `slabs spanned − 1`). Ties prefer the axis that admits more slabs
/// (more parallelism), then the lowest dimension — fully deterministic,
/// independent of thread count and hash order.
fn select_shard_dim(grid: &Grid, rects: &[Rect], weights: &[u64], num_shards: usize) -> usize {
    let mut best: Option<(u64, usize, usize)> = None; // (score, slabs, dim)
    for d in 0..grid.dim() {
        let bins = grid.bins()[d];
        let s = num_shards.min(bins).max(1);
        // Bin → slab, with the same `i * bins / s` boundaries the build
        // uses below.
        let mut slab_of = vec![0usize; bins];
        for si in 0..s {
            for slab in &mut slab_of[si * bins / s..(si + 1) * bins / s] {
                *slab = si;
            }
        }
        let bounds_iv = grid.bounds().interval(d);
        let w = bounds_iv.length() / bins as f64;
        let mut score = 0u64;
        for (c, r) in rects.iter().enumerate() {
            if weights[c] == 0 {
                continue;
            }
            let Some(clipped) = r.clip(grid.bounds()) else {
                continue;
            };
            // The clipped bin span [i_min, i_max], with the exact
            // formulas of `Grid::cells_overlapping`.
            let iv = clipped.interval(d);
            let ta = (iv.lo() - bounds_iv.lo()) / w;
            let tb = (iv.hi() - bounds_iv.lo()) / w;
            let i_min = ((ta - 1.0).floor() as isize + 1).clamp(0, bins as isize - 1) as usize;
            let i_max = (tb.ceil() as isize - 1).clamp(0, bins as isize - 1) as usize;
            if i_max < i_min {
                continue;
            }
            score += (slab_of[i_max] - slab_of[i_min]) as u64;
        }
        let better = match best {
            None => true,
            Some((bs, bslabs, _)) => score < bs || (score == bs && s > bslabs),
        };
        if better {
            best = Some((score, s, d));
        }
    }
    best.map(|(_, _, d)| d).unwrap_or(0)
}

impl ShardedAggregate {
    /// Builds with the shard count from `PUBSUB_AGG_SHARDS` (default 1)
    /// and the shard axis from `PUBSUB_AGG_SHARD_DIM` (`auto`, the
    /// default, scores every dimension; an explicit `0..D-1` pins the
    /// axis; out-of-range values fall back to `auto`).
    ///
    /// `probs_of` supplies each slab grid's cell-probability model
    /// (e.g. [`CellProbability::uniform`]).
    pub fn build(
        grid: &Grid,
        aggregation: Arc<Aggregation>,
        probs_of: impl Fn(&Grid) -> CellProbability + Sync,
        algorithm: &dyn ClusteringAlgorithm,
        k: usize,
        threshold: f64,
    ) -> Self {
        let shards = env_knob("PUBSUB_AGG_SHARDS", 1usize, |s| {
            s.parse().ok().filter(|&n| n > 0)
        });
        Self::build_with_shards(grid, aggregation, probs_of, algorithm, k, threshold, shards)
    }

    /// Builds with an explicit shard count (clamped to the shard axis's
    /// bin count); the axis comes from `PUBSUB_AGG_SHARD_DIM` as in
    /// [`ShardedAggregate::build`].
    ///
    /// # Panics
    ///
    /// Panics if `num_shards == 0` or `threshold` is outside `[0, 1]`.
    pub fn build_with_shards(
        grid: &Grid,
        aggregation: Arc<Aggregation>,
        probs_of: impl Fn(&Grid) -> CellProbability + Sync,
        algorithm: &dyn ClusteringAlgorithm,
        k: usize,
        threshold: f64,
        num_shards: usize,
    ) -> Self {
        let dim = env_knob("PUBSUB_AGG_SHARD_DIM", None, |s| {
            if s == "auto" {
                Some(None)
            } else {
                s.parse::<usize>().ok().map(Some)
            }
        })
        .filter(|&d| d < grid.dim());
        Self::build_with_shards_on(
            grid,
            aggregation,
            probs_of,
            algorithm,
            k,
            threshold,
            num_shards,
            dim,
        )
    }

    /// Builds with an explicit shard count and shard axis. `shard_dim
    /// == None` scores every dimension and picks the one minimizing
    /// cross-slab class replication; `Some(d)` pins the axis (forcing
    /// `Some(0)` reproduces the legacy dimension-0 sharding
    /// bit-for-bit). The per-shard framework-build → cluster →
    /// plan-compile loop fans out across the scoped-thread pool; shard
    /// contents are placed by index, so results are bit-identical at
    /// any `PUBSUB_THREADS`.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards == 0`, `shard_dim` is out of range, or
    /// `threshold` is outside `[0, 1]`.
    #[allow(clippy::too_many_arguments)]
    pub fn build_with_shards_on(
        grid: &Grid,
        aggregation: Arc<Aggregation>,
        probs_of: impl Fn(&Grid) -> CellProbability + Sync,
        algorithm: &dyn ClusteringAlgorithm,
        k: usize,
        threshold: f64,
        num_shards: usize,
        shard_dim: Option<usize>,
    ) -> Self {
        assert!(num_shards >= 1, "at least one shard");
        let dim = shard_dim.unwrap_or_else(|| {
            select_shard_dim(
                grid,
                &aggregation.variant_rects,
                &aggregation.variant_weights,
                num_shards,
            )
        });
        assert!(dim < grid.dim(), "shard axis out of range");
        let bd = grid.bins()[dim];
        let s = num_shards.min(bd);
        let ivd = grid.bounds().interval(dim);
        let wd = ivd.length() / bd as f64;
        let index = Arc::new(SubscriptionIndex::build(&aggregation.variant_rects));
        // Slab geometry is cheap and sequential; the expensive
        // rasterize → merge → cluster → compile chain per slab runs on
        // the pool.
        let slabs: Vec<(f64, f64, Grid)> = (0..s)
            .map(|si| {
                let start = si * bd / s;
                let end = (si + 1) * bd / s;
                // Bin-aligned slab edges; the outer edges reuse the
                // exact bounds so a single shard reproduces the grid
                // bit-for-bit.
                let lo = if start == 0 {
                    ivd.lo()
                } else {
                    ivd.lo() + start as f64 * wd
                };
                let hi = if end == bd {
                    ivd.hi()
                } else {
                    ivd.lo() + end as f64 * wd
                };
                let mut ivs = grid.bounds().intervals().to_vec();
                ivs[dim] = Interval::new(lo, hi).expect("slab interval is well-formed");
                let mut bins = grid.bins().to_vec();
                bins[dim] = end - start;
                let sub = Grid::new(Rect::new(ivs), bins).expect("slab grid is well-formed");
                (lo, hi, sub)
            })
            .collect();
        // lint: allow(thread-panic): the expect-style invariant
        // failures inside propagate through par_map_vec's scoped join
        // and re-raise on the caller before any partial shard set is
        // observable.
        let shards = parallel::par_map_vec(slabs, 2, |(lo, hi, sub)| {
            let probs = probs_of(&sub);
            let framework = aggregation.build_framework(sub, &probs, None);
            let clustering = algorithm.cluster(&framework, k);
            let plan = AggregatePlan::compile_with_index(
                &framework,
                &clustering,
                threshold,
                aggregation.clone(),
                index.clone(),
            );
            AggregateShard {
                lo,
                hi,
                probs,
                framework,
                clustering,
                plan,
            }
        });
        ShardedAggregate {
            agg: aggregation,
            index,
            shards,
            threshold,
            k,
            shard_dim: dim,
            strict_recluster: false,
        }
    }

    /// Switches churn into strict re-cluster mode: every shard an added
    /// or removed rectangle overlaps re-runs the delta + re-cluster
    /// pipeline even when its class set did not change shape, so
    /// hyper-cell popularity ranks follow the updated weights exactly
    /// as a cold rebuild's would. Costlier per batch; the default
    /// (lazy) mode re-clusters only on structural change and keeps
    /// interested sets exact either way.
    pub fn with_strict_recluster(mut self, on: bool) -> Self {
        self.strict_recluster = on;
        self
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The grid axis the slabs partition.
    pub fn shard_dim(&self) -> usize {
        self.shard_dim
    }

    /// The aggregation backing the shards.
    pub fn aggregation(&self) -> &Aggregation {
        &self.agg
    }

    /// Runs the full framework + clustering invariant audit over every
    /// shard (see [`Validator`]); failures accumulate in `validator`.
    pub fn audit(&self, validator: &mut Validator) {
        for shard in &self.shards {
            validator
                .check_framework(&shard.framework)
                .check_clustering(&shard.framework, &shard.clustering);
        }
    }

    /// The shard whose shard-axis slab contains the event, if any.
    fn shard_of(&self, p: &Point) -> Option<usize> {
        let x = p[self.shard_dim];
        let i = self.shards.partition_point(|sh| sh.hi < x);
        (i < self.shards.len() && self.shards[i].lo < x && x <= self.shards[i].hi).then_some(i)
    }

    // lint: hot-path
    /// Serves one event through its slab's plan. Events outside the
    /// dimension-0 extent fall back to the global variant index and are
    /// unicast; interested sets are exact in every case.
    pub fn serve(&self, p: &Point, scratch: &mut AggregateScratch) -> Delivery {
        match self.shard_of(p) {
            Some(s) => self.shards[s].plan.serve(p, scratch),
            None => {
                self.index.matching_into(p, &mut scratch.variant_hits);
                scratch.interested.clear();
                for &v in &scratch.variant_hits {
                    scratch
                        .interested
                        .extend(self.agg.variant_members[v].iter().map(|&i| i as usize));
                }
                scratch.interested.sort_unstable();
                Delivery::Unicast
            }
        }
    }
    // lint: hot-path end

    /// Folds a batch of concrete subscription adds and removals into
    /// the structure.
    ///
    /// `added` rectangles identical to an existing variant are *weight
    /// bumps*: the class's multiplicity and member list grow, no
    /// framework changes shape. A new rectangle becomes a new class.
    /// `removed` holds live concrete subscriber ids: each is deleted
    /// from its variant's member list and its class weight decremented;
    /// a class whose weight reaches zero is *tombstoned* — its bits are
    /// cleared (via [`GridFramework::apply_delta`]) from every shard
    /// its rectangle overlaps, while its slot and rectangle key are
    /// kept so a later identical add revives it in place.
    ///
    /// Only the shards some changed rectangle overlaps are refreshed —
    /// re-clustered when their class set changed shape (always, under
    /// [`ShardedAggregate::with_strict_recluster`]), recompiled
    /// regardless so decisions see the new weights. The refresh fans
    /// out across the scoped-thread pool (shards are independent), and
    /// the shared variant index grows incrementally instead of being
    /// rebuilt. Shards untouched by every changed rectangle keep their
    /// framework, clustering, plan and (smaller) class universe: a
    /// class whose rectangle misses a slab can never match an event
    /// routed there, so their serving stays exact without
    /// recompilation.
    ///
    /// # Panics
    ///
    /// Panics if a removed id is out of range or not live (already
    /// removed).
    pub fn apply_churn(
        &mut self,
        added: &[Rect],
        removed: &[usize],
        algorithm: &dyn ClusteringAlgorithm,
    ) -> AggregateChurnReport {
        let mut report = AggregateChurnReport {
            added: added.len(),
            removed: removed.len(),
            ..AggregateChurnReport::default()
        };
        if added.is_empty() && removed.is_empty() {
            return report;
        }
        // 1. Fold into the aggregation. Plans hold `Arc` snapshots, so
        //    `make_mut` gives untouched shards their consistent old
        //    view. Per-class weights are snapshotted on first touch so
        //    structural transitions (0 → live, live → 0) are judged on
        //    the batch's *net* effect.
        let agg = Arc::make_mut(&mut self.agg);
        let old_num_variants = agg.variant_rects.len();
        let mut before_weight: HashMap<usize, u64> = HashMap::new();
        for rect in added {
            let concrete = agg.num_concrete as u32;
            agg.num_concrete += 1;
            match agg.class_index.get(&rect_key(rect)) {
                Some(&v) => {
                    let v = v as usize;
                    let c = agg.variant_class[v] as usize;
                    before_weight.entry(c).or_insert(agg.weights[c]);
                    agg.class_of.push(c as u32);
                    agg.weights[c] += 1;
                    agg.variant_weights[v] += 1;
                    agg.variant_members[v].push(concrete);
                    report.weight_bumps += 1;
                }
                None => {
                    let c = agg.weights.len();
                    let v = agg.variant_rects.len() as u32;
                    before_weight.insert(c, 0);
                    agg.class_of.push(c as u32);
                    agg.weights.push(1);
                    agg.variant_offsets.push(v + 1);
                    agg.variant_rects.push(rect.clone());
                    agg.variant_weights.push(1);
                    agg.variant_members.push(vec![concrete]);
                    agg.variant_class.push(c as u32);
                    agg.class_index.insert(rect_key(rect), v);
                    report.new_classes += 1;
                }
            }
        }
        let mut removed_spans: Vec<(f64, f64)> = Vec::with_capacity(removed.len());
        for &id in removed {
            assert!(id < agg.num_concrete, "removed id out of range");
            let c = agg.class_of[id] as usize;
            before_weight.entry(c).or_insert(agg.weights[c]);
            let id32 = id as u32;
            let hit = agg.variants_of(c).find_map(|v| {
                agg.variant_members[v]
                    .binary_search(&id32)
                    .ok()
                    .map(|pos| (v, pos))
            });
            let (v, pos) = hit.expect("removed subscriber is not live");
            agg.variant_members[v].remove(pos);
            agg.variant_weights[v] -= 1;
            agg.weights[c] -= 1;
            let iv = agg.variant_rects[v].interval(self.shard_dim);
            removed_spans.push((iv.lo(), iv.hi()));
            if agg.weights[c] == 0 {
                report.class_tombstones += 1;
            } else {
                report.weight_decrements += 1;
            }
        }
        // Net structural transitions, in class order (not the
        // HashMap's) so the delta lists — and therefore every
        // downstream framework — are deterministic.
        // lint: allow(hash-order): keys are sorted before use
        let mut touched: Vec<(usize, u64)> = before_weight.into_iter().collect();
        touched.sort_unstable_by_key(|&(c, _)| c);
        let mut structural_adds: Vec<(usize, Rect)> = Vec::new();
        let mut structural_removes: Vec<(usize, Rect)> = Vec::new();
        for (c, before) in touched {
            let after = agg.weights[c];
            let rect = agg.variant_rects[agg.variant_offsets[c] as usize].clone();
            if before == 0 && after > 0 {
                structural_adds.push((c, rect));
            } else if before > 0 && after == 0 {
                structural_removes.push((c, rect));
            }
        }
        let num_classes = agg.weights.len();
        let shared_weights = Arc::new(agg.weights.clone());
        if agg.variant_rects.len() > old_num_variants {
            // Grow the variant index in place with only the new
            // rectangles. Tombstoned variants stay indexed — they
            // expand to empty member lists, so matches remain exact.
            let new_rects = agg.variant_rects[old_num_variants..].to_vec();
            Arc::make_mut(&mut self.index).extend(&new_rects);
        }
        // 2. Refresh only the shards some changed rectangle overlaps.
        //    Half-open slabs: rect (a, b] overlaps slab (lo, hi] iff
        //    a < hi and lo < b. Shards are independent, so the refresh
        //    fans out over the pool; results are placed by shard index.
        let dim = self.shard_dim;
        let mut spans: Vec<(f64, f64)> = added
            .iter()
            .map(|r| {
                let iv = r.interval(dim);
                (iv.lo(), iv.hi())
            })
            .collect();
        spans.extend(removed_spans);
        let agg_shared = self.agg.clone();
        let index_shared = self.index.clone();
        let threshold = self.threshold;
        let k = self.k;
        let strict = self.strict_recluster;
        let old_shards = std::mem::take(&mut self.shards);
        let refreshed: Vec<(AggregateShard, bool, bool)> =
            // lint: allow(thread-panic): invariant failures propagate
            // through par_map_vec's scoped join and re-raise on the
            // caller; the taken shard set is never published partially.
            parallel::par_map_vec(old_shards, 2, |mut shard| {
                let affected = spans.iter().any(|&(a, b)| a < shard.hi && shard.lo < b);
                if !affected {
                    return (shard, false, false);
                }
                shard.framework.weights = Some(shared_weights.clone());
                let overlaps = |r: &Rect| {
                    let iv = r.interval(dim);
                    iv.lo() < shard.hi && shard.lo < iv.hi()
                };
                let adds: Vec<(usize, Rect)> = structural_adds
                    .iter()
                    .filter(|(_, r)| overlaps(r))
                    .cloned()
                    .collect();
                let removes: Vec<(usize, Rect)> = structural_removes
                    .iter()
                    .filter(|(_, r)| overlaps(r))
                    .cloned()
                    .collect();
                let reclustered = if !adds.is_empty() || !removes.is_empty() || strict {
                    shard
                        .framework
                        .apply_delta(&adds, &removes, &shard.probs, num_classes);
                    shard.clustering = algorithm.cluster(&shard.framework, k);
                    true
                } else {
                    false
                };
                shard.plan = AggregatePlan::compile_with_index(
                    &shard.framework,
                    &shard.clustering,
                    threshold,
                    agg_shared.clone(),
                    index_shared.clone(),
                );
                (shard, reclustered, true)
            });
        for (shard, reclustered, recompiled) in refreshed {
            report.shards_reclustered += reclustered as usize;
            report.shards_recompiled += recompiled as usize;
            self.shards.push(shard);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::DispatchScratch;
    use crate::framework::CellProbability;
    use crate::kmeans::{KMeans, KMeansVariant};
    use rand::prelude::*;

    fn rect1(lo: f64, hi: f64) -> Rect {
        Rect::new(vec![Interval::new(lo, hi).unwrap()])
    }

    /// Subscriptions drawn from a small pool of distinct rectangles —
    /// the Zipf-head duplication the aggregation layer targets.
    fn near_dup_subs(n: usize, distinct: usize, seed: u64) -> Vec<Rect> {
        let mut rng = StdRng::seed_from_u64(seed);
        let pool: Vec<Rect> = (0..distinct)
            .map(|_| {
                let lo = rng.gen_range(0.0..9.0);
                let hi = lo + rng.gen_range(0.1..4.0);
                rect1(lo, hi.min(10.0))
            })
            .collect();
        (0..n)
            .map(|_| pool[rng.gen_range(0..pool.len())].clone())
            .collect()
    }

    #[test]
    fn aggregation_collapses_identical_rects() {
        let subs = near_dup_subs(200, 13, 5);
        let agg = Aggregation::build(&subs);
        assert!(agg.num_classes() <= 13);
        assert_eq!(agg.num_concrete(), 200);
        assert_eq!(agg.weights().iter().sum::<u64>(), 200);
        assert!(agg.ratio() >= 200.0 / 13.0);
        // The packed member lists partition 0..n and agree with class_of.
        let mut seen = [false; 200];
        for c in 0..agg.num_classes() {
            let mut members = Vec::new();
            agg.expand_class_into(c, &mut members);
            for &m in &members {
                assert!(!seen[m], "member {m} in two classes");
                seen[m] = true;
                assert_eq!(agg.class_of()[m] as usize, c);
                assert_eq!(rect_key(&subs[m]), rect_key(&agg.class_rects()[c]));
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn empty_population() {
        let agg = Aggregation::build(&[]);
        assert_eq!(agg.num_classes(), 0);
        assert_eq!(agg.ratio(), 1.0);
        let grid = Grid::cube(0.0, 10.0, 1, 10).unwrap();
        let probs = CellProbability::uniform(&grid);
        let fw = agg.build_framework(grid, &probs, None);
        let c = KMeans::new(KMeansVariant::MacQueen).cluster(&fw, 3);
        let plan = AggregatePlan::compile(&fw, &c, 0.0, Arc::new(agg));
        let mut scratch = AggregateScratch::new();
        let d = plan.serve(&Point::new(vec![5.0]), &mut scratch);
        assert_eq!(d, Delivery::Unicast);
        assert!(scratch.interested().is_empty());
    }

    #[test]
    fn aggregated_serve_matches_concrete_serve() {
        let subs = near_dup_subs(300, 17, 9);
        let agg = Arc::new(Aggregation::build(&subs));
        let mut rng = StdRng::seed_from_u64(99);
        for threshold in [0.0, 0.3, 1.0] {
            let grid = Grid::cube(0.0, 10.0, 1, 40).unwrap();
            let probs = CellProbability::uniform(&grid);
            let raw_fw = GridFramework::build(grid.clone(), &subs, &probs, None);
            let raw_c = KMeans::new(KMeansVariant::MacQueen).cluster(&raw_fw, 6);
            let raw_plan = DispatchPlan::compile(&raw_fw, &raw_c)
                .with_threshold(threshold)
                .with_subscriptions(&subs);
            let agg_fw = agg.build_framework(grid, &probs, None);
            let agg_c = KMeans::new(KMeansVariant::MacQueen).cluster(&agg_fw, 6);
            let agg_plan = AggregatePlan::compile(&agg_fw, &agg_c, threshold, agg.clone());
            let mut raw_scratch = DispatchScratch::new();
            let mut agg_scratch = AggregateScratch::new();
            for _ in 0..500 {
                let p = Point::new(vec![rng.gen_range(-1.0..11.0)]);
                let raw_d = raw_plan.serve(&p, &mut raw_scratch);
                let agg_d = agg_plan.serve(&p, &mut agg_scratch);
                assert_eq!(raw_d, agg_d, "threshold {threshold}, point {p:?}");
                assert_eq!(
                    raw_scratch.interested(),
                    agg_scratch.interested(),
                    "threshold {threshold}, point {p:?}"
                );
            }
        }
    }

    #[test]
    fn single_shard_matches_unsharded_plan() {
        let subs = near_dup_subs(250, 15, 21);
        let agg = Arc::new(Aggregation::build(&subs));
        let grid = Grid::cube(0.0, 10.0, 1, 30).unwrap();
        let probs = CellProbability::uniform(&grid);
        let fw = agg.build_framework(grid.clone(), &probs, None);
        let c = KMeans::new(KMeansVariant::MacQueen).cluster(&fw, 5);
        let plan = AggregatePlan::compile(&fw, &c, 0.25, agg.clone());
        let sharded = ShardedAggregate::build_with_shards(
            &grid,
            agg,
            CellProbability::uniform,
            &KMeans::new(KMeansVariant::MacQueen),
            5,
            0.25,
            1,
        );
        assert_eq!(sharded.num_shards(), 1);
        let mut a = AggregateScratch::new();
        let mut b = AggregateScratch::new();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..400 {
            let p = Point::new(vec![rng.gen_range(-1.0..11.0)]);
            assert_eq!(plan.serve(&p, &mut a), sharded.serve(&p, &mut b));
            assert_eq!(a.interested(), b.interested());
        }
    }

    #[test]
    fn sharded_interested_sets_are_exact_at_any_shard_count() {
        let subs = near_dup_subs(220, 19, 33);
        let agg = Arc::new(Aggregation::build(&subs));
        let grid = Grid::cube(0.0, 10.0, 1, 24).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        for shards in [1, 3, 4, 24] {
            let sharded = ShardedAggregate::build_with_shards(
                &grid,
                agg.clone(),
                CellProbability::uniform,
                &KMeans::new(KMeansVariant::MacQueen),
                4,
                0.2,
                shards,
            );
            let mut scratch = AggregateScratch::new();
            for _ in 0..300 {
                let p = Point::new(vec![rng.gen_range(-1.0..11.0)]);
                let brute: Vec<usize> = subs
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r.contains(&p))
                    .map(|(i, _)| i)
                    .collect();
                sharded.serve(&p, &mut scratch);
                assert_eq!(scratch.interested(), &brute[..], "{shards} shards, {p:?}");
            }
        }
    }

    #[test]
    fn churn_keeps_interested_sets_exact() {
        let mut subs = near_dup_subs(150, 11, 41);
        let agg = Arc::new(Aggregation::build(&subs));
        let grid = Grid::cube(0.0, 10.0, 1, 20).unwrap();
        let alg = KMeans::new(KMeansVariant::MacQueen);
        let mut sharded = ShardedAggregate::build_with_shards(
            &grid,
            agg,
            CellProbability::uniform,
            &alg,
            4,
            0.2,
            4,
        );
        let mut rng = StdRng::seed_from_u64(17);
        for round in 0..3 {
            // A mix of duplicates (weight bumps) and fresh rectangles.
            let mut batch = Vec::new();
            for _ in 0..10 {
                if rng.gen_bool(0.5) && !subs.is_empty() {
                    batch.push(subs[rng.gen_range(0..subs.len())].clone());
                } else {
                    let lo = rng.gen_range(0.0..9.0);
                    batch.push(rect1(lo, (lo + rng.gen_range(0.1..2.0)).min(10.0)));
                }
            }
            let report = sharded.apply_churn(&batch, &[], &alg);
            assert_eq!(report.added, 10);
            assert_eq!(report.new_classes + report.weight_bumps, 10);
            subs.extend(batch);
            assert_eq!(sharded.aggregation().num_concrete(), subs.len());
            let mut scratch = AggregateScratch::new();
            for _ in 0..200 {
                let p = Point::new(vec![rng.gen_range(-1.0..11.0)]);
                let brute: Vec<usize> = subs
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r.contains(&p))
                    .map(|(i, _)| i)
                    .collect();
                sharded.serve(&p, &mut scratch);
                assert_eq!(scratch.interested(), &brute[..], "round {round}, {p:?}");
            }
        }
    }

    #[test]
    fn churn_removals_keep_interested_sets_exact_and_tombstone_classes() {
        let subs = near_dup_subs(120, 9, 77);
        let agg = Arc::new(Aggregation::build(&subs));
        let grid = Grid::cube(0.0, 10.0, 1, 20).unwrap();
        let alg = KMeans::new(KMeansVariant::MacQueen);
        let mut sharded = ShardedAggregate::build_with_shards(
            &grid,
            agg,
            CellProbability::uniform,
            &alg,
            4,
            0.2,
            4,
        );
        let mut live: Vec<Option<Rect>> = subs.iter().cloned().map(Some).collect();
        let mut rng = StdRng::seed_from_u64(78);
        for round in 0..4 {
            // Remove a handful of live ids, sometimes draining a whole
            // class; add a few fresh rectangles too.
            let live_ids: Vec<usize> = live
                .iter()
                .enumerate()
                .filter_map(|(i, r)| r.as_ref().map(|_| i))
                .collect();
            let mut removed: Vec<usize> = Vec::new();
            for _ in 0..8.min(live_ids.len()) {
                let id = live_ids[rng.gen_range(0..live_ids.len())];
                if !removed.contains(&id) {
                    removed.push(id);
                }
            }
            let added: Vec<Rect> = (0..3)
                .map(|_| {
                    let lo = rng.gen_range(0.0..9.0);
                    rect1(lo, (lo + rng.gen_range(0.1..2.0)).min(10.0))
                })
                .collect();
            let report = sharded.apply_churn(&added, &removed, &alg);
            assert_eq!(report.removed, removed.len());
            assert_eq!(
                report.weight_decrements + report.class_tombstones,
                removed.len()
            );
            for &id in &removed {
                live[id] = None;
            }
            for r in &added {
                live.push(Some(r.clone()));
            }
            let mut scratch = AggregateScratch::new();
            for _ in 0..200 {
                let p = Point::new(vec![rng.gen_range(-1.0..11.0)]);
                let brute: Vec<usize> = live
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r.as_ref().is_some_and(|r| r.contains(&p)))
                    .map(|(i, _)| i)
                    .collect();
                sharded.serve(&p, &mut scratch);
                assert_eq!(scratch.interested(), &brute[..], "round {round}, {p:?}");
            }
        }
    }

    #[test]
    fn tombstoned_class_revives_on_identical_add() {
        let r = rect1(2.0, 4.0);
        let subs = vec![r.clone(), r.clone(), rect1(6.0, 8.0)];
        let agg = Arc::new(Aggregation::build(&subs));
        let grid = Grid::cube(0.0, 10.0, 1, 10).unwrap();
        let alg = KMeans::new(KMeansVariant::MacQueen);
        let mut sharded = ShardedAggregate::build_with_shards(
            &grid,
            agg,
            CellProbability::uniform,
            &alg,
            2,
            0.2,
            2,
        );
        // Drain class 0 entirely, then re-add the identical rectangle.
        let report = sharded.apply_churn(&[], &[0, 1], &alg);
        assert_eq!(report.class_tombstones, 1);
        let mut scratch = AggregateScratch::new();
        let p = Point::new(vec![3.0]);
        sharded.serve(&p, &mut scratch);
        assert!(scratch.interested().is_empty());
        let report = sharded.apply_churn(&[r], &[], &alg);
        // The revived class reuses its slot: a weight bump, not a new
        // class, but a structural (re-cluster-worthy) change.
        assert_eq!(report.new_classes, 0);
        assert_eq!(report.weight_bumps, 1);
        assert!(report.shards_reclustered >= 1);
        sharded.serve(&p, &mut scratch);
        assert_eq!(scratch.interested(), &[3]);
        assert_eq!(sharded.aggregation().num_classes(), 2);
    }

    #[test]
    fn shard_axis_scoring_prefers_the_less_replicated_dimension() {
        // Rectangles thin along dimension 1 but spanning all of
        // dimension 0: slabbing along dim 1 replicates nothing, while
        // dim 0 would put every class in every slab.
        let subs: Vec<Rect> = (0..8)
            .map(|i| {
                let lo = i as f64;
                Rect::new(vec![
                    Interval::new(0.0, 10.0).unwrap(),
                    Interval::new(lo, lo + 0.5).unwrap(),
                ])
            })
            .collect();
        let agg = Arc::new(Aggregation::build(&subs));
        let grid = Grid::cube(0.0, 10.0, 2, 10).unwrap();
        let alg = KMeans::new(KMeansVariant::MacQueen);
        let auto = ShardedAggregate::build_with_shards_on(
            &grid,
            agg.clone(),
            CellProbability::uniform,
            &alg,
            3,
            0.2,
            4,
            None,
        );
        assert_eq!(auto.shard_dim(), 1);
        // Forced dim 0 still serves exactly; auto serves exactly.
        let forced = ShardedAggregate::build_with_shards_on(
            &grid,
            agg,
            CellProbability::uniform,
            &alg,
            3,
            0.2,
            4,
            Some(0),
        );
        assert_eq!(forced.shard_dim(), 0);
        let mut rng = StdRng::seed_from_u64(91);
        let mut a = AggregateScratch::new();
        let mut b = AggregateScratch::new();
        for _ in 0..300 {
            let p = Point::new(vec![rng.gen_range(-1.0..11.0), rng.gen_range(-1.0..11.0)]);
            let brute: Vec<usize> = subs
                .iter()
                .enumerate()
                .filter(|(_, r)| r.contains(&p))
                .map(|(i, _)| i)
                .collect();
            auto.serve(&p, &mut a);
            forced.serve(&p, &mut b);
            assert_eq!(a.interested(), &brute[..], "auto axis, {p:?}");
            assert_eq!(b.interested(), &brute[..], "forced axis, {p:?}");
        }
    }

    #[test]
    fn cell_canonicalization_merges_same_cell_sets() {
        // Two rectangles with different bounds but identical cell
        // overlap on a coarse grid must merge under tier 2.
        let subs = vec![rect1(1.1, 3.9), rect1(1.3, 3.7), rect1(6.0, 8.0)];
        let grid = Grid::cube(0.0, 10.0, 1, 5).unwrap();
        let t1 = Aggregation::build(&subs);
        assert_eq!(t1.num_classes(), 3);
        let t2 = t1.cell_canonicalize(&grid);
        assert_eq!(t2.num_classes(), 2);
        assert_eq!(t2.num_variants(), 3);
        assert_eq!(t2.weights(), &[2, 1]);
        // Delivery through a tier-2 plan still tests per-variant rects.
        let probs = CellProbability::uniform(&grid);
        let fw = t2.build_framework(grid, &probs, None);
        let c = KMeans::new(KMeansVariant::MacQueen).cluster(&fw, 2);
        let plan = AggregatePlan::compile(&fw, &c, 0.0, Arc::new(t2));
        let mut scratch = AggregateScratch::new();
        // 1.2 is inside variant 0 only; 1.35 is inside variants 0 and 1.
        plan.serve(&Point::new(vec![1.2]), &mut scratch);
        assert_eq!(scratch.interested(), &[0]);
        plan.serve(&Point::new(vec![1.35]), &mut scratch);
        assert_eq!(scratch.interested(), &[0, 1]);
    }
}
