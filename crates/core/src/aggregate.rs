//! Subscription aggregation: canonical subscription classes, the
//! aggregated dispatch plan and dimension-0 sharding (DESIGN.md §15).
//!
//! At a million subscribers the concrete population is dominated by
//! near-duplicates: popular interest specifications are submitted by
//! many subscribers verbatim. [`Aggregation`] collapses identical
//! rectangles into *canonical classes* before rasterization, keeping a
//! reverse map `class → packed concrete-subscriber list` used only at
//! delivery time. The class universe — typically orders of magnitude
//! smaller — is clustered with per-class multiplicities
//! ([`GridFramework::build_weighted`]), producing decisions
//! bit-identical to clustering the expanded concrete population.
//!
//! [`AggregatePlan`] compiles a class framework + clustering into the
//! serve path: locate the event's cell, filter the cell's *classes* by
//! per-variant rectangle containment, expand the surviving variants'
//! packed member lists into the exact concrete interested set, and make
//! the threshold decision on weighted counts (the same integers the
//! concrete plan computes, hence the same `f64` comparison).
//!
//! [`ShardedAggregate`] splits the grid into contiguous dimension-0
//! slabs, each with its own sub-framework and plan, so churn touches
//! one shard instead of rebuilding the whole structure.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

use geometry::{CellId, Grid, Interval, Point, Rect};

use crate::clustering::{Clustering, ClusteringAlgorithm};
use crate::dispatch::DispatchPlan;
use crate::framework::{CellProbability, GridFramework};
use crate::knob::env_knob;
use crate::match_index::SubscriptionIndex;
use crate::matching::Delivery;
use crate::parallel;

/// Bit-pattern identity key of a rectangle: `(lo, hi)` bits per
/// dimension. Two rectangles with equal keys rasterize, match and
/// cluster identically in every context.
pub(crate) fn rect_key(r: &Rect) -> Vec<(u64, u64)> {
    r.intervals()
        .iter()
        .map(|iv| (iv.lo().to_bits(), iv.hi().to_bits()))
        .collect()
}

fn parse_bool(s: &str) -> Option<bool> {
    match s {
        "1" | "true" | "yes" | "on" => Some(true),
        "0" | "false" | "no" | "off" => Some(false),
        _ => None,
    }
}

/// Whether cell-set canonicalization (tier 2) is enabled.
fn cell_canon_enabled() -> bool {
    env_knob("PUBSUB_AGG_CELL_CANON", false, parse_bool)
}

/// Canonicalized subscription population: concrete subscriptions
/// collapsed into classes of identical rectangles (tier 1) and,
/// optionally, classes of identical rasterized cell sets (tier 2,
/// behind `PUBSUB_AGG_CELL_CANON`).
///
/// A *variant* is one distinct rectangle bit-pattern; a *class* is one
/// clustering slot. Under tier 1 every class holds exactly one variant.
/// Under tier 2 a class may hold several variants whose rectangles
/// differ but overlap the same grid cells — delivery then tests each
/// variant's own rectangle, so interested sets stay exact.
///
/// # Examples
///
/// ```
/// use geometry::{Interval, Rect};
/// use pubsub_core::Aggregation;
///
/// let subs = vec![
///     Rect::new(vec![Interval::new(0.0, 5.0)?]),
///     Rect::new(vec![Interval::new(2.0, 9.0)?]),
///     Rect::new(vec![Interval::new(0.0, 5.0)?]), // duplicate of #0
/// ];
/// let agg = Aggregation::build(&subs);
/// assert_eq!(agg.num_classes(), 2);
/// assert_eq!(agg.weights(), &[2, 1]);
/// # Ok::<(), geometry::IntervalError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Aggregation {
    num_concrete: usize,
    /// Concrete subscriber → class.
    class_of: Vec<u32>,
    /// Class → concrete multiplicity (sum of its variants' weights).
    weights: Vec<u64>,
    /// Class → its variants, `variant_offsets[c] .. variant_offsets[c+1]`.
    variant_offsets: Vec<u32>,
    /// Variant → distinct rectangle.
    variant_rects: Vec<Rect>,
    /// Variant → concrete multiplicity.
    variant_weights: Vec<u64>,
    /// Variant → packed concrete subscriber ids, ascending.
    variant_members: Vec<Vec<u32>>,
    /// Variant → owning class.
    variant_class: Vec<u32>,
    /// Rectangle bit-pattern → variant, for churn-time lookups.
    class_index: HashMap<Vec<(u64, u64)>, u32>,
}

impl Aggregation {
    /// Canonicalizes by exact rectangle identity (tier 1): concrete
    /// subscriptions with bit-identical rectangles form one class, in
    /// first-occurrence order.
    pub fn build(subscriptions: &[Rect]) -> Self {
        let n = subscriptions.len();
        let mut class_index: HashMap<Vec<(u64, u64)>, u32> = HashMap::with_capacity(n);
        let mut class_of = Vec::with_capacity(n);
        let mut variant_rects: Vec<Rect> = Vec::new();
        let mut variant_weights: Vec<u64> = Vec::new();
        let mut variant_members: Vec<Vec<u32>> = Vec::new();
        for (i, sub) in subscriptions.iter().enumerate() {
            let c = *class_index.entry(rect_key(sub)).or_insert_with(|| {
                variant_rects.push(sub.clone());
                variant_weights.push(0);
                variant_members.push(Vec::new());
                (variant_rects.len() - 1) as u32
            });
            class_of.push(c);
            variant_weights[c as usize] += 1;
            variant_members[c as usize].push(i as u32);
        }
        let num_classes = variant_rects.len();
        Aggregation {
            num_concrete: n,
            class_of,
            weights: variant_weights.clone(),
            variant_offsets: (0..=num_classes as u32).collect(),
            variant_rects,
            variant_weights,
            variant_members,
            variant_class: (0..num_classes as u32).collect(),
            class_index,
        }
    }

    /// Tier-1 canonicalization, then — when `PUBSUB_AGG_CELL_CANON` is
    /// enabled — a second pass merging variants whose rectangles
    /// overlap exactly the same cells of `grid` into one class.
    ///
    /// Cell-set classes are sound only when the serving grid equals the
    /// canonicalization grid (shard sub-grids recompute cell edges, so
    /// a variant's cell set there could in principle drift by one
    /// cell); [`ShardedAggregate`] should therefore be fed a tier-1
    /// aggregation, which is the knob's default.
    pub fn build_with_grid(subscriptions: &[Rect], grid: &Grid) -> Self {
        let t1 = Self::build(subscriptions);
        if !cell_canon_enabled() {
            return t1;
        }
        t1.cell_canonicalize(grid)
    }

    /// Regroups tier-1 variants by identical rasterized cell set.
    fn cell_canonicalize(mut self, grid: &Grid) -> Self {
        let nv = self.variant_rects.len();
        let cell_sets: Vec<Vec<CellId>> =
            parallel::par_map(&self.variant_rects, parallel::MIN_PARALLEL_LEN, |r| {
                grid.cells_overlapping(r)
            });
        // Group variants by cell set, classes in first-occurrence order.
        let mut by_cells: HashMap<Vec<CellId>, u32> = HashMap::with_capacity(nv);
        let mut classes: Vec<Vec<u32>> = Vec::new();
        let mut class_of_variant = vec![0u32; nv];
        for (v, cells) in cell_sets.into_iter().enumerate() {
            let c = *by_cells.entry(cells).or_insert_with(|| {
                classes.push(Vec::new());
                (classes.len() - 1) as u32
            });
            classes[c as usize].push(v as u32);
            class_of_variant[v] = c;
        }
        // Reorder variants so each class's variants are contiguous.
        let mut variant_rects = Vec::with_capacity(nv);
        let mut variant_weights = Vec::with_capacity(nv);
        let mut variant_members = Vec::with_capacity(nv);
        let mut variant_class = Vec::with_capacity(nv);
        let mut variant_offsets = Vec::with_capacity(classes.len() + 1);
        variant_offsets.push(0u32);
        let mut weights = vec![0u64; classes.len()];
        let mut new_variant_of_old = vec![0u32; nv];
        for (c, vs) in classes.iter().enumerate() {
            for &v in vs {
                let v = v as usize;
                new_variant_of_old[v] = variant_rects.len() as u32;
                variant_rects.push(self.variant_rects[v].clone());
                variant_weights.push(self.variant_weights[v]);
                variant_members.push(std::mem::take(&mut self.variant_members[v]));
                variant_class.push(c as u32);
                weights[c] += self.variant_weights[v];
            }
            variant_offsets.push(variant_rects.len() as u32);
        }
        // In tier 1 a class id *is* its variant id, so the concrete map
        // composes directly with the variant regrouping.
        let class_of = self
            .class_of
            .iter()
            .map(|&old| class_of_variant[old as usize])
            .collect();
        let class_index = self
            .class_index
            // lint: allow(hash-order): value remap only, rebuilt into a map
            .into_iter()
            .map(|(k, v)| (k, new_variant_of_old[v as usize]))
            .collect();
        Aggregation {
            num_concrete: self.num_concrete,
            class_of,
            weights,
            variant_offsets,
            variant_rects,
            variant_weights,
            variant_members,
            variant_class,
            class_index,
        }
    }

    /// Number of concrete subscriptions the aggregation was built from.
    pub fn num_concrete(&self) -> usize {
        self.num_concrete
    }

    /// Number of canonical classes (clustering slots).
    pub fn num_classes(&self) -> usize {
        self.weights.len()
    }

    /// Number of distinct rectangle variants.
    pub fn num_variants(&self) -> usize {
        self.variant_rects.len()
    }

    /// Per-class concrete multiplicities.
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }

    /// The class of concrete subscriber `i`.
    pub fn class_of(&self) -> &[u32] {
        &self.class_of
    }

    /// The distinct rectangles, one per variant.
    pub fn variant_rects(&self) -> &[Rect] {
        &self.variant_rects
    }

    /// Concrete subscriptions per class — the aggregation ratio. `1.0`
    /// means nothing aggregated; large values mean heavy duplication.
    pub fn ratio(&self) -> f64 {
        if self.num_classes() == 0 {
            1.0
        } else {
            self.num_concrete as f64 / self.num_classes() as f64
        }
    }

    /// The variants of `class`.
    fn variants_of(&self, class: usize) -> Range<usize> {
        self.variant_offsets[class] as usize..self.variant_offsets[class + 1] as usize
    }

    /// One representative rectangle per class (the first variant's).
    /// Under tier 1 this is exactly the distinct-rectangle list.
    pub fn class_rects(&self) -> Vec<Rect> {
        (0..self.num_classes())
            .map(|c| self.variant_rects[self.variant_offsets[c] as usize].clone())
            .collect()
    }

    /// Appends the concrete subscriber ids of `class` to `out`.
    pub fn expand_class_into(&self, class: usize, out: &mut Vec<usize>) {
        for v in self.variants_of(class) {
            out.extend(self.variant_members[v].iter().map(|&i| i as usize));
        }
    }

    /// Builds the class-universe framework: one slot per class, ranked
    /// and clustered with the class multiplicities, bit-identical to
    /// building over the expanded concrete population.
    pub fn build_framework(
        &self,
        grid: Grid,
        probs: &CellProbability,
        max_cells: Option<usize>,
    ) -> GridFramework {
        let class_rects = self.class_rects();
        GridFramework::build_weighted(
            grid,
            &class_rects,
            Arc::new(self.weights.clone()),
            probs,
            max_cells,
        )
    }
}

/// Reusable per-thread buffers for [`AggregatePlan::serve`].
#[derive(Debug, Default)]
pub struct AggregateScratch {
    interested: Vec<usize>,
    variant_hits: Vec<usize>,
}

impl AggregateScratch {
    /// Creates empty scratch buffers.
    pub fn new() -> Self {
        AggregateScratch::default()
    }

    /// The concrete interested subscriber ids of the last
    /// [`AggregatePlan::serve`] call, in increasing order.
    pub fn interested(&self) -> &[usize] {
        &self.interested
    }
}

/// A dispatch plan over a class-universe framework: decisions use
/// weighted class counts (the same integers the concrete plan computes)
/// and interested sets are expanded from the aggregation's packed
/// member lists — exact per concrete subscriber.
#[derive(Debug, Clone)]
pub struct AggregatePlan {
    plan: DispatchPlan,
    agg: Arc<Aggregation>,
    /// Fallback index over the *variant* rectangles for events outside
    /// every kept cell.
    index: Arc<SubscriptionIndex>,
    /// Per-group concrete (weighted) size.
    group_wsize: Vec<u64>,
}

impl AggregatePlan {
    /// Compiles the plan from a class framework, its clustering and the
    /// aggregation that produced the framework.
    ///
    /// # Panics
    ///
    /// Panics if the framework's subscriber universe exceeds the
    /// aggregation's class count, if the clustering was not built over
    /// `framework`, or if `threshold` is outside `[0, 1]`.
    pub fn compile(
        framework: &GridFramework,
        clustering: &Clustering,
        threshold: f64,
        aggregation: Arc<Aggregation>,
    ) -> Self {
        let index = Arc::new(SubscriptionIndex::build(&aggregation.variant_rects));
        Self::compile_with_index(framework, clustering, threshold, aggregation, index)
    }

    /// [`AggregatePlan::compile`] with a shared variant index —
    /// [`ShardedAggregate`] builds the index once for all shards.
    pub(crate) fn compile_with_index(
        framework: &GridFramework,
        clustering: &Clustering,
        threshold: f64,
        aggregation: Arc<Aggregation>,
        index: Arc<SubscriptionIndex>,
    ) -> Self {
        // `<=` rather than `==`: after churn a shard untouched by the
        // new classes keeps its smaller class universe (see
        // `ShardedAggregate::apply_churn`).
        assert!(
            framework.num_subscribers() <= aggregation.num_classes(),
            "framework universe exceeds the aggregation's class count"
        );
        let plan = DispatchPlan::compile(framework, clustering).with_threshold(threshold);
        let group_wsize = clustering
            .groups()
            .iter()
            .map(|g| g.members.iter().map(|c| aggregation.weights[c]).sum())
            .collect();
        AggregatePlan {
            plan,
            agg: aggregation,
            index,
            group_wsize,
        }
    }

    /// The configured threshold.
    pub fn threshold(&self) -> f64 {
        self.plan.threshold
    }

    /// Number of compiled groups.
    pub fn num_groups(&self) -> usize {
        self.group_wsize.len()
    }

    // lint: hot-path
    /// Serves one event: computes the exact concrete interested set
    /// (into `scratch`, ascending) and the delivery decision.
    ///
    /// Candidates are the event cell's *classes*; each class's variants
    /// are filtered by their own rectangle, so tier-2 classes (merged
    /// cell sets, different rectangles) still deliver exactly. The
    /// threshold compares `weighted hits / weighted group size` — the
    /// same integers, hence the same `f64`s, as the concrete
    /// [`DispatchPlan::serve`].
    ///
    /// # Panics
    ///
    /// Panics if `p`'s dimension differs from the grid's.
    pub fn serve(&self, p: &Point, scratch: &mut AggregateScratch) -> Delivery {
        match self.plan.locate(p) {
            Some(slot) => {
                scratch.interested.clear();
                let s = slot as usize;
                let range =
                    self.plan.hyper_offsets[s] as usize..self.plan.hyper_offsets[s + 1] as usize;
                let group = self.plan.hyper_group[s] as usize;
                let mut whits = 0u64;
                for &class in &self.plan.hyper_members[range] {
                    let c = class as usize;
                    let in_group = self.plan.group_contains(group, c);
                    for v in self.agg.variants_of(c) {
                        if self.agg.variant_rects[v].contains(p) {
                            scratch
                                .interested
                                .extend(self.agg.variant_members[v].iter().map(|&i| i as usize));
                            if in_group {
                                whits += self.agg.variant_weights[v];
                            }
                        }
                    }
                }
                scratch.interested.sort_unstable();
                let wsize = self.group_wsize[group];
                if wsize == 0 {
                    return Delivery::Unicast;
                }
                let proportion = whits as f64 / wsize as f64;
                if proportion >= self.plan.threshold && whits > 0 {
                    Delivery::Multicast { group }
                } else {
                    Delivery::Unicast
                }
            }
            None => {
                // Outside every kept cell: exact variant stab, expanded
                // to concrete ids. Always unicast, as in the concrete
                // plan's fallback.
                self.index.matching_into(p, &mut scratch.variant_hits);
                scratch.interested.clear();
                for &v in &scratch.variant_hits {
                    scratch
                        .interested
                        .extend(self.agg.variant_members[v].iter().map(|&i| i as usize));
                }
                scratch.interested.sort_unstable();
                Delivery::Unicast
            }
        }
    }

    /// Batched [`serve`](Self::serve) over an index range: pushes one
    /// [`Delivery`] per index onto `out` (not cleared). Chunk
    /// boundaries are the caller's, so deterministic chunked
    /// decompositions are preserved.
    pub fn serve_chunk<'a>(
        &self,
        range: Range<usize>,
        point_of: impl Fn(usize) -> &'a Point,
        out: &mut Vec<Delivery>,
        scratch: &mut AggregateScratch,
    ) {
        out.reserve(range.len());
        for e in range {
            out.push(self.serve(point_of(e), scratch));
        }
    }
    // lint: hot-path end
}

/// One dimension-0 slab: its sub-grid framework, clustering and plan.
#[derive(Debug)]
struct AggregateShard {
    /// Half-open dimension-0 extent `(lo, hi]` of the slab.
    lo: f64,
    hi: f64,
    probs: CellProbability,
    framework: GridFramework,
    clustering: Clustering,
    plan: AggregatePlan,
}

/// Outcome of [`ShardedAggregate::apply_churn`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AggregateChurnReport {
    /// Concrete subscriptions added.
    pub added: usize,
    /// Additions that created a brand-new class.
    pub new_classes: usize,
    /// Additions folded into an existing class (weight bump only).
    pub weight_bumps: usize,
    /// Shards whose framework changed structurally and were
    /// re-clustered.
    pub shards_reclustered: usize,
    /// Shards whose plan was recompiled (superset of the above).
    pub shards_recompiled: usize,
}

/// The aggregated structure sharded into contiguous dimension-0 slabs
/// (`PUBSUB_AGG_SHARDS`), each an independent sub-framework + plan over
/// the full class universe. Events route to their slab by the
/// dimension-0 coordinate; churn re-clusters only the slabs the changed
/// rectangles overlap.
///
/// With one shard the slab grid equals the full grid, so serving is
/// identical to an unsharded [`AggregatePlan`]. With several shards the
/// per-slab clusterings are a different (equally valid) grouping
/// policy; interested sets remain exact at any shard count.
#[derive(Debug)]
pub struct ShardedAggregate {
    agg: Arc<Aggregation>,
    index: Arc<SubscriptionIndex>,
    shards: Vec<AggregateShard>,
    threshold: f64,
    k: usize,
}

impl ShardedAggregate {
    /// Builds with the shard count from `PUBSUB_AGG_SHARDS` (default 1).
    ///
    /// `probs_of` supplies each slab grid's cell-probability model
    /// (e.g. [`CellProbability::uniform`]).
    pub fn build(
        grid: &Grid,
        aggregation: Arc<Aggregation>,
        probs_of: impl Fn(&Grid) -> CellProbability,
        algorithm: &dyn ClusteringAlgorithm,
        k: usize,
        threshold: f64,
    ) -> Self {
        let shards = env_knob("PUBSUB_AGG_SHARDS", 1usize, |s| {
            s.parse().ok().filter(|&n| n > 0)
        });
        Self::build_with_shards(grid, aggregation, probs_of, algorithm, k, threshold, shards)
    }

    /// Builds with an explicit shard count (clamped to the grid's
    /// dimension-0 bin count).
    ///
    /// # Panics
    ///
    /// Panics if `num_shards == 0` or `threshold` is outside `[0, 1]`.
    pub fn build_with_shards(
        grid: &Grid,
        aggregation: Arc<Aggregation>,
        probs_of: impl Fn(&Grid) -> CellProbability,
        algorithm: &dyn ClusteringAlgorithm,
        k: usize,
        threshold: f64,
        num_shards: usize,
    ) -> Self {
        assert!(num_shards >= 1, "at least one shard");
        // lint: allow(no-literal-index): sharding is along dimension 0,
        // and grids always have >= 1 dimension
        let b0 = grid.bins()[0];
        let s = num_shards.min(b0);
        let iv0 = grid.bounds().interval(0);
        let w0 = iv0.length() / b0 as f64;
        let index = Arc::new(SubscriptionIndex::build(&aggregation.variant_rects));
        let mut shards = Vec::with_capacity(s);
        for si in 0..s {
            let start = si * b0 / s;
            let end = (si + 1) * b0 / s;
            // Bin-aligned slab edges; the outer edges reuse the exact
            // bounds so a single shard reproduces the grid bit-for-bit.
            let lo = if start == 0 {
                iv0.lo()
            } else {
                iv0.lo() + start as f64 * w0
            };
            let hi = if end == b0 {
                iv0.hi()
            } else {
                iv0.lo() + end as f64 * w0
            };
            let mut ivs = grid.bounds().intervals().to_vec();
            // lint: allow(no-literal-index): see above
            ivs[0] = Interval::new(lo, hi).expect("slab interval is well-formed");
            let mut bins = grid.bins().to_vec();
            // lint: allow(no-literal-index): see above
            bins[0] = end - start;
            let sub = Grid::new(Rect::new(ivs), bins).expect("slab grid is well-formed");
            let probs = probs_of(&sub);
            let framework = aggregation.build_framework(sub, &probs, None);
            let clustering = algorithm.cluster(&framework, k);
            let plan = AggregatePlan::compile_with_index(
                &framework,
                &clustering,
                threshold,
                aggregation.clone(),
                index.clone(),
            );
            shards.push(AggregateShard {
                lo,
                hi,
                probs,
                framework,
                clustering,
                plan,
            });
        }
        ShardedAggregate {
            agg: aggregation,
            index,
            shards,
            threshold,
            k,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The aggregation backing the shards.
    pub fn aggregation(&self) -> &Aggregation {
        &self.agg
    }

    /// The shard whose dimension-0 slab contains the event, if any.
    fn shard_of(&self, p: &Point) -> Option<usize> {
        // lint: allow(no-literal-index): sharding is along dimension 0
        let x = p[0];
        let i = self.shards.partition_point(|sh| sh.hi < x);
        (i < self.shards.len() && self.shards[i].lo < x && x <= self.shards[i].hi).then_some(i)
    }

    // lint: hot-path
    /// Serves one event through its slab's plan. Events outside the
    /// dimension-0 extent fall back to the global variant index and are
    /// unicast; interested sets are exact in every case.
    pub fn serve(&self, p: &Point, scratch: &mut AggregateScratch) -> Delivery {
        match self.shard_of(p) {
            Some(s) => self.shards[s].plan.serve(p, scratch),
            None => {
                self.index.matching_into(p, &mut scratch.variant_hits);
                scratch.interested.clear();
                for &v in &scratch.variant_hits {
                    scratch
                        .interested
                        .extend(self.agg.variant_members[v].iter().map(|&i| i as usize));
                }
                scratch.interested.sort_unstable();
                Delivery::Unicast
            }
        }
    }
    // lint: hot-path end

    /// Folds a batch of new concrete subscriptions into the structure.
    ///
    /// A rectangle identical to an existing variant is a *weight bump*:
    /// the class's multiplicity and member list grow, no framework
    /// changes shape. A new rectangle becomes a new class, applied via
    /// [`GridFramework::apply_delta`] to — and re-clustered on — only
    /// the shards its dimension-0 extent overlaps. Shards untouched by
    /// every added rectangle keep their framework, clustering, plan and
    /// (smaller) class universe: a class whose rectangle misses a slab
    /// can never match an event routed there, so their serving stays
    /// exact without recompilation.
    pub fn apply_churn(
        &mut self,
        added: &[Rect],
        algorithm: &dyn ClusteringAlgorithm,
    ) -> AggregateChurnReport {
        let mut report = AggregateChurnReport {
            added: added.len(),
            ..AggregateChurnReport::default()
        };
        if added.is_empty() {
            return report;
        }
        // 1. Fold into the aggregation. Plans hold `Arc` snapshots, so
        //    `make_mut` gives untouched shards their consistent old view.
        let agg = Arc::make_mut(&mut self.agg);
        let mut structural: Vec<(usize, Rect)> = Vec::new();
        for rect in added {
            let concrete = agg.num_concrete as u32;
            agg.num_concrete += 1;
            match agg.class_index.get(&rect_key(rect)) {
                Some(&v) => {
                    let v = v as usize;
                    let c = agg.variant_class[v] as usize;
                    agg.class_of.push(c as u32);
                    agg.weights[c] += 1;
                    agg.variant_weights[v] += 1;
                    agg.variant_members[v].push(concrete);
                    report.weight_bumps += 1;
                }
                None => {
                    let c = agg.weights.len();
                    let v = agg.variant_rects.len() as u32;
                    agg.class_of.push(c as u32);
                    agg.weights.push(1);
                    agg.variant_offsets.push(v + 1);
                    agg.variant_rects.push(rect.clone());
                    agg.variant_weights.push(1);
                    agg.variant_members.push(vec![concrete]);
                    agg.variant_class.push(c as u32);
                    agg.class_index.insert(rect_key(rect), v);
                    structural.push((c, rect.clone()));
                    report.new_classes += 1;
                }
            }
        }
        let num_classes = agg.weights.len();
        let shared_weights = Arc::new(agg.weights.clone());
        if !structural.is_empty() {
            self.index = Arc::new(SubscriptionIndex::build(&self.agg.variant_rects));
        }
        // 2. Refresh only the shards some added rectangle overlaps.
        //    Half-open slabs: rect (a, b] overlaps slab (lo, hi] iff
        //    a < hi and lo < b.
        let spans: Vec<(f64, f64)> = added
            .iter()
            // lint: allow(no-literal-index): sharding is along dimension 0
            .map(|r| (r.interval(0).lo(), r.interval(0).hi()))
            .collect();
        for shard in &mut self.shards {
            let affected = spans.iter().any(|&(a, b)| a < shard.hi && shard.lo < b);
            if !affected {
                continue;
            }
            report.shards_recompiled += 1;
            shard.framework.weights = Some(shared_weights.clone());
            let adds: Vec<(usize, Rect)> = structural
                .iter()
                .filter(|(_, r)| {
                    // lint: allow(no-literal-index): dimension-0 slab test
                    let iv = r.interval(0);
                    iv.lo() < shard.hi && shard.lo < iv.hi()
                })
                .cloned()
                .collect();
            if !adds.is_empty() {
                shard
                    .framework
                    .apply_delta(&adds, &[], &shard.probs, num_classes);
                shard.clustering = algorithm.cluster(&shard.framework, self.k);
                report.shards_reclustered += 1;
            }
            shard.plan = AggregatePlan::compile_with_index(
                &shard.framework,
                &shard.clustering,
                self.threshold,
                self.agg.clone(),
                self.index.clone(),
            );
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::DispatchScratch;
    use crate::framework::CellProbability;
    use crate::kmeans::{KMeans, KMeansVariant};
    use rand::prelude::*;

    fn rect1(lo: f64, hi: f64) -> Rect {
        Rect::new(vec![Interval::new(lo, hi).unwrap()])
    }

    /// Subscriptions drawn from a small pool of distinct rectangles —
    /// the Zipf-head duplication the aggregation layer targets.
    fn near_dup_subs(n: usize, distinct: usize, seed: u64) -> Vec<Rect> {
        let mut rng = StdRng::seed_from_u64(seed);
        let pool: Vec<Rect> = (0..distinct)
            .map(|_| {
                let lo = rng.gen_range(0.0..9.0);
                let hi = lo + rng.gen_range(0.1..4.0);
                rect1(lo, hi.min(10.0))
            })
            .collect();
        (0..n)
            .map(|_| pool[rng.gen_range(0..pool.len())].clone())
            .collect()
    }

    #[test]
    fn aggregation_collapses_identical_rects() {
        let subs = near_dup_subs(200, 13, 5);
        let agg = Aggregation::build(&subs);
        assert!(agg.num_classes() <= 13);
        assert_eq!(agg.num_concrete(), 200);
        assert_eq!(agg.weights().iter().sum::<u64>(), 200);
        assert!(agg.ratio() >= 200.0 / 13.0);
        // The packed member lists partition 0..n and agree with class_of.
        let mut seen = [false; 200];
        for c in 0..agg.num_classes() {
            let mut members = Vec::new();
            agg.expand_class_into(c, &mut members);
            for &m in &members {
                assert!(!seen[m], "member {m} in two classes");
                seen[m] = true;
                assert_eq!(agg.class_of()[m] as usize, c);
                assert_eq!(rect_key(&subs[m]), rect_key(&agg.class_rects()[c]));
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn empty_population() {
        let agg = Aggregation::build(&[]);
        assert_eq!(agg.num_classes(), 0);
        assert_eq!(agg.ratio(), 1.0);
        let grid = Grid::cube(0.0, 10.0, 1, 10).unwrap();
        let probs = CellProbability::uniform(&grid);
        let fw = agg.build_framework(grid, &probs, None);
        let c = KMeans::new(KMeansVariant::MacQueen).cluster(&fw, 3);
        let plan = AggregatePlan::compile(&fw, &c, 0.0, Arc::new(agg));
        let mut scratch = AggregateScratch::new();
        let d = plan.serve(&Point::new(vec![5.0]), &mut scratch);
        assert_eq!(d, Delivery::Unicast);
        assert!(scratch.interested().is_empty());
    }

    #[test]
    fn aggregated_serve_matches_concrete_serve() {
        let subs = near_dup_subs(300, 17, 9);
        let agg = Arc::new(Aggregation::build(&subs));
        let mut rng = StdRng::seed_from_u64(99);
        for threshold in [0.0, 0.3, 1.0] {
            let grid = Grid::cube(0.0, 10.0, 1, 40).unwrap();
            let probs = CellProbability::uniform(&grid);
            let raw_fw = GridFramework::build(grid.clone(), &subs, &probs, None);
            let raw_c = KMeans::new(KMeansVariant::MacQueen).cluster(&raw_fw, 6);
            let raw_plan = DispatchPlan::compile(&raw_fw, &raw_c)
                .with_threshold(threshold)
                .with_subscriptions(&subs);
            let agg_fw = agg.build_framework(grid, &probs, None);
            let agg_c = KMeans::new(KMeansVariant::MacQueen).cluster(&agg_fw, 6);
            let agg_plan = AggregatePlan::compile(&agg_fw, &agg_c, threshold, agg.clone());
            let mut raw_scratch = DispatchScratch::new();
            let mut agg_scratch = AggregateScratch::new();
            for _ in 0..500 {
                let p = Point::new(vec![rng.gen_range(-1.0..11.0)]);
                let raw_d = raw_plan.serve(&p, &mut raw_scratch);
                let agg_d = agg_plan.serve(&p, &mut agg_scratch);
                assert_eq!(raw_d, agg_d, "threshold {threshold}, point {p:?}");
                assert_eq!(
                    raw_scratch.interested(),
                    agg_scratch.interested(),
                    "threshold {threshold}, point {p:?}"
                );
            }
        }
    }

    #[test]
    fn single_shard_matches_unsharded_plan() {
        let subs = near_dup_subs(250, 15, 21);
        let agg = Arc::new(Aggregation::build(&subs));
        let grid = Grid::cube(0.0, 10.0, 1, 30).unwrap();
        let probs = CellProbability::uniform(&grid);
        let fw = agg.build_framework(grid.clone(), &probs, None);
        let c = KMeans::new(KMeansVariant::MacQueen).cluster(&fw, 5);
        let plan = AggregatePlan::compile(&fw, &c, 0.25, agg.clone());
        let sharded = ShardedAggregate::build_with_shards(
            &grid,
            agg,
            CellProbability::uniform,
            &KMeans::new(KMeansVariant::MacQueen),
            5,
            0.25,
            1,
        );
        assert_eq!(sharded.num_shards(), 1);
        let mut a = AggregateScratch::new();
        let mut b = AggregateScratch::new();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..400 {
            let p = Point::new(vec![rng.gen_range(-1.0..11.0)]);
            assert_eq!(plan.serve(&p, &mut a), sharded.serve(&p, &mut b));
            assert_eq!(a.interested(), b.interested());
        }
    }

    #[test]
    fn sharded_interested_sets_are_exact_at_any_shard_count() {
        let subs = near_dup_subs(220, 19, 33);
        let agg = Arc::new(Aggregation::build(&subs));
        let grid = Grid::cube(0.0, 10.0, 1, 24).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        for shards in [1, 3, 4, 24] {
            let sharded = ShardedAggregate::build_with_shards(
                &grid,
                agg.clone(),
                CellProbability::uniform,
                &KMeans::new(KMeansVariant::MacQueen),
                4,
                0.2,
                shards,
            );
            let mut scratch = AggregateScratch::new();
            for _ in 0..300 {
                let p = Point::new(vec![rng.gen_range(-1.0..11.0)]);
                let brute: Vec<usize> = subs
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r.contains(&p))
                    .map(|(i, _)| i)
                    .collect();
                sharded.serve(&p, &mut scratch);
                assert_eq!(scratch.interested(), &brute[..], "{shards} shards, {p:?}");
            }
        }
    }

    #[test]
    fn churn_keeps_interested_sets_exact() {
        let mut subs = near_dup_subs(150, 11, 41);
        let agg = Arc::new(Aggregation::build(&subs));
        let grid = Grid::cube(0.0, 10.0, 1, 20).unwrap();
        let alg = KMeans::new(KMeansVariant::MacQueen);
        let mut sharded = ShardedAggregate::build_with_shards(
            &grid,
            agg,
            CellProbability::uniform,
            &alg,
            4,
            0.2,
            4,
        );
        let mut rng = StdRng::seed_from_u64(17);
        for round in 0..3 {
            // A mix of duplicates (weight bumps) and fresh rectangles.
            let mut batch = Vec::new();
            for _ in 0..10 {
                if rng.gen_bool(0.5) && !subs.is_empty() {
                    batch.push(subs[rng.gen_range(0..subs.len())].clone());
                } else {
                    let lo = rng.gen_range(0.0..9.0);
                    batch.push(rect1(lo, (lo + rng.gen_range(0.1..2.0)).min(10.0)));
                }
            }
            let report = sharded.apply_churn(&batch, &alg);
            assert_eq!(report.added, 10);
            assert_eq!(report.new_classes + report.weight_bumps, 10);
            subs.extend(batch);
            assert_eq!(sharded.aggregation().num_concrete(), subs.len());
            let mut scratch = AggregateScratch::new();
            for _ in 0..200 {
                let p = Point::new(vec![rng.gen_range(-1.0..11.0)]);
                let brute: Vec<usize> = subs
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r.contains(&p))
                    .map(|(i, _)| i)
                    .collect();
                sharded.serve(&p, &mut scratch);
                assert_eq!(scratch.interested(), &brute[..], "round {round}, {p:?}");
            }
        }
    }

    #[test]
    fn cell_canonicalization_merges_same_cell_sets() {
        // Two rectangles with different bounds but identical cell
        // overlap on a coarse grid must merge under tier 2.
        let subs = vec![rect1(1.1, 3.9), rect1(1.3, 3.7), rect1(6.0, 8.0)];
        let grid = Grid::cube(0.0, 10.0, 1, 5).unwrap();
        let t1 = Aggregation::build(&subs);
        assert_eq!(t1.num_classes(), 3);
        let t2 = t1.cell_canonicalize(&grid);
        assert_eq!(t2.num_classes(), 2);
        assert_eq!(t2.num_variants(), 3);
        assert_eq!(t2.weights(), &[2, 1]);
        // Delivery through a tier-2 plan still tests per-variant rects.
        let probs = CellProbability::uniform(&grid);
        let fw = t2.build_framework(grid, &probs, None);
        let c = KMeans::new(KMeansVariant::MacQueen).cluster(&fw, 2);
        let plan = AggregatePlan::compile(&fw, &c, 0.0, Arc::new(t2));
        let mut scratch = AggregateScratch::new();
        // 1.2 is inside variant 0 only; 1.35 is inside variants 0 and 1.
        plan.serve(&Point::new(vec![1.2]), &mut scratch);
        assert_eq!(scratch.interested(), &[0]);
        plan.serve(&Point::new(vec![1.35]), &mut scratch);
        assert_eq!(scratch.interested(), &[0, 1]);
    }
}
