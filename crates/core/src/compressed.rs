//! Adaptive compressed membership containers.
//!
//! A dense [`BitSet`] spends `universe / 8` bytes no matter how few
//! members it holds — at a million subscribers that is 125 KB *per
//! cell*, which is what makes the raw layout collapse at scale (see
//! `results/BENCH_churn.json`). [`CompressedSet`] stores each set in
//! whichever of two containers is smaller, roaring-style but chosen
//! per set rather than per 2^16 chunk:
//!
//! * **Array** — a sorted `Vec<u32>` of member indices. Intersections
//!   use a galloping (exponential probe + binary search) walk when one
//!   side is much smaller, a linear merge otherwise.
//! * **Bitmap** — packed words, identical layout to [`BitSet`], so the
//!   blocked-popcount kernels ([`waste_counts_words`],
//!   [`and_popcount_words`]) serve the dense arm unchanged.
//!
//! Promotion (array → bitmap) and demotion (bitmap → array) happen on
//! mutation with hysteresis so a set oscillating around the threshold
//! does not thrash. All counting operations return exactly the same
//! integers as the dense `BitSet` equivalents — pinned by the
//! `compressed_oracle` proptests — so swapping representations can
//! never change a clustering decision.

use crate::membership::{
    and_popcount_words, waste_counts_words, weighted_waste_counts_words, BitSet,
};

const WORD_BITS: usize = 64;

/// An array container above this fraction of the universe promotes to
/// a bitmap: an array of `u32` beats packed words while
/// `4·count < universe/8`, i.e. `count < universe/32`.
const PROMOTE_DIV: usize = 32;
/// A bitmap demotes back to an array only below half the promotion
/// point (hysteresis: grow-then-shrink round-trips near the threshold
/// do not rebuild the container every step).
const DEMOTE_DIV: usize = 64;
/// Arrays never promote below this many members regardless of universe
/// (tiny universes: the bitmap is a handful of words anyway).
const PROMOTE_MIN: usize = 8;
/// When the larger array is at least this many times the smaller, the
/// intersection gallops instead of merging.
const GALLOP_RATIO: usize = 16;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Repr {
    /// Sorted member indices.
    Array(Vec<u32>),
    /// Packed words, `BitSet` layout.
    Bitmap(Vec<u64>),
}

/// A membership set stored in the smaller of a sorted index array and
/// a packed bitmap, switching representation adaptively as it mutates.
///
/// # Examples
///
/// ```
/// use pubsub_core::{BitSet, CompressedSet};
///
/// let mut s = CompressedSet::new(1_000_000);
/// s.insert(3);
/// s.insert(999_999);
/// assert!(s.is_array()); // 2 members in a 1M universe: array wins
/// assert_eq!(s.count(), 2);
/// let dense = BitSet::from_members(1_000_000, [3, 999_999]);
/// assert_eq!(s.to_bitset(), dense);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedSet {
    universe: usize,
    repr: Repr,
}

/// `|a ∩ b|` for sorted slices via galloping: each element of the
/// smaller side is located in the larger by an exponential probe
/// followed by a binary search over the probed window, resuming from
/// the last match position.
fn gallop_intersect_count(small: &[u32], large: &[u32]) -> usize {
    let mut count = 0usize;
    let mut lo = 0usize;
    for &x in small {
        // Exponential probe from the current frontier. On exit every
        // index below `lo` holds a value < x and, if in range, `hi` is
        // the first probe with `large[hi] >= x` — so the window must
        // include `hi` itself.
        let mut step = 1usize;
        let mut hi = lo;
        while hi < large.len() && large[hi] < x {
            lo = hi + 1;
            hi += step;
            step *= 2;
        }
        let end = (hi + 1).min(large.len());
        match large[lo..end].binary_search(&x) {
            Ok(p) => {
                count += 1;
                lo += p + 1;
            }
            Err(p) => lo += p,
        }
        if lo >= large.len() {
            break;
        }
    }
    count
}

/// `|a ∩ b|` for sorted slices via a linear merge walk.
fn merge_intersect_count(a: &[u32], b: &[u32]) -> usize {
    let mut count = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Sorted-slice intersection size, choosing galloping when the size
/// skew warrants it. Both strategies count the same elements, so the
/// choice never changes the result.
fn sorted_intersect_count(a: &[u32], b: &[u32]) -> usize {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        0
    } else if large.len() / small.len().max(1) >= GALLOP_RATIO {
        gallop_intersect_count(small, large)
    } else {
        merge_intersect_count(small, large)
    }
}

impl CompressedSet {
    /// An empty set over `0..universe` (starts as an array).
    pub fn new(universe: usize) -> Self {
        CompressedSet {
            universe,
            repr: Repr::Array(Vec::new()),
        }
    }

    /// Converts a dense [`BitSet`], picking the smaller container.
    pub fn from_bitset(set: &BitSet) -> Self {
        let universe = set.universe();
        let count = set.count();
        let repr = if count > promote_at(universe) {
            Repr::Bitmap(set.words().to_vec())
        } else {
            Repr::Array(set.iter().map(|i| i as u32).collect())
        };
        CompressedSet { universe, repr }
    }

    /// Materializes the dense [`BitSet`] with identical members.
    pub fn to_bitset(&self) -> BitSet {
        match &self.repr {
            Repr::Array(v) => BitSet::from_members(self.universe, v.iter().map(|&i| i as usize)),
            Repr::Bitmap(w) => {
                let mut s = BitSet::new(self.universe);
                for (wi, &word) in w.iter().enumerate() {
                    let mut bits = word;
                    while bits != 0 {
                        let b = bits.trailing_zeros() as usize;
                        s.insert(wi * WORD_BITS + b);
                        bits &= bits - 1;
                    }
                }
                s
            }
        }
    }

    /// Size of the universe (not the member count).
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Whether the set currently uses the sorted-array container.
    pub fn is_array(&self) -> bool {
        matches!(self.repr, Repr::Array(_))
    }

    /// The sorted member indices when in array form (the packed
    /// concrete-subscriber lists of the aggregation layer read this
    /// directly).
    pub fn as_array(&self) -> Option<&[u32]> {
        match &self.repr {
            Repr::Array(v) => Some(v),
            Repr::Bitmap(_) => None,
        }
    }

    /// Number of members.
    pub fn count(&self) -> usize {
        match &self.repr {
            Repr::Array(v) => v.len(),
            Repr::Bitmap(w) => w.iter().map(|x| x.count_ones() as usize).sum(),
        }
    }

    /// Whether the set has no members.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Whether index `i` is a member.
    ///
    /// # Panics
    ///
    /// Panics if `i >= universe`.
    pub fn contains(&self, i: usize) -> bool {
        assert!(
            i < self.universe,
            "index {i} out of universe {}",
            self.universe
        );
        match &self.repr {
            Repr::Array(v) => v.binary_search(&(i as u32)).is_ok(),
            Repr::Bitmap(w) => w[i / WORD_BITS] & (1 << (i % WORD_BITS)) != 0,
        }
    }

    /// Adds index `i`; returns whether it was newly inserted. May
    /// promote the container to a bitmap.
    ///
    /// # Panics
    ///
    /// Panics if `i >= universe`.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(
            i < self.universe,
            "index {i} out of universe {}",
            self.universe
        );
        let newly = match &mut self.repr {
            Repr::Array(v) => match v.binary_search(&(i as u32)) {
                Ok(_) => false,
                Err(p) => {
                    v.insert(p, i as u32);
                    true
                }
            },
            Repr::Bitmap(w) => {
                let (wi, b) = (i / WORD_BITS, i % WORD_BITS);
                let newly = w[wi] & (1 << b) == 0;
                w[wi] |= 1 << b;
                newly
            }
        };
        self.rebalance();
        newly
    }

    /// Removes index `i`; returns whether it was present. May demote
    /// the container back to an array.
    ///
    /// # Panics
    ///
    /// Panics if `i >= universe`.
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(
            i < self.universe,
            "index {i} out of universe {}",
            self.universe
        );
        let present = match &mut self.repr {
            Repr::Array(v) => match v.binary_search(&(i as u32)) {
                Ok(p) => {
                    v.remove(p);
                    true
                }
                Err(_) => false,
            },
            Repr::Bitmap(w) => {
                let (wi, b) = (i / WORD_BITS, i % WORD_BITS);
                let present = w[wi] & (1 << b) != 0;
                w[wi] &= !(1 << b);
                present
            }
        };
        self.rebalance();
        present
    }

    /// Extends the universe to `new_universe`, keeping all members (a
    /// smaller value is a no-op, as for [`BitSet::grow`]).
    pub fn grow(&mut self, new_universe: usize) {
        if new_universe <= self.universe {
            return;
        }
        self.universe = new_universe;
        if let Repr::Bitmap(w) = &mut self.repr {
            w.resize(new_universe.div_ceil(WORD_BITS), 0);
        }
        self.rebalance();
    }

    /// Iterator over member indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        // Chain of two optional iterators keeps one concrete type.
        let (arr, words) = match &self.repr {
            Repr::Array(v) => (Some(v.iter().map(|&i| i as usize)), None),
            Repr::Bitmap(w) => (None, Some(w)),
        };
        arr.into_iter().flatten().chain(
            words
                .into_iter()
                .flat_map(|w| w.iter().enumerate())
                .flat_map(|(wi, &word)| {
                    let mut bits = word;
                    std::iter::from_fn(move || {
                        if bits == 0 {
                            None
                        } else {
                            let b = bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            Some(wi * WORD_BITS + b)
                        }
                    })
                }),
        )
    }

    /// `|self ∩ other|` — galloping/merge on the array arm, blocked
    /// popcount on the bitmap arm, index probes when mixed. All arms
    /// count the same elements.
    ///
    /// # Panics
    ///
    /// Panics on universe mismatch.
    pub fn intersection_count(&self, other: &CompressedSet) -> usize {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        match (&self.repr, &other.repr) {
            (Repr::Array(a), Repr::Array(b)) => sorted_intersect_count(a, b),
            (Repr::Bitmap(a), Repr::Bitmap(b)) => and_popcount_words(a, b),
            (Repr::Array(a), Repr::Bitmap(w)) | (Repr::Bitmap(w), Repr::Array(a)) => a
                .iter()
                .filter(|&&i| w[i as usize / WORD_BITS] & (1 << (i as usize % WORD_BITS)) != 0)
                .count(),
        }
    }

    /// Both directed difference counts `(|self \ other|, |other \ self|)`
    /// — the expected-waste inner loop. Derived from the intersection
    /// (`|A\B| = |A| - |A∩B|`), so every representation pair returns
    /// exactly the dense result.
    ///
    /// # Panics
    ///
    /// Panics on universe mismatch.
    pub fn waste_counts(&self, other: &CompressedSet) -> (usize, usize) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        if let (Repr::Bitmap(a), Repr::Bitmap(b)) = (&self.repr, &other.repr) {
            // Dense × dense: the single-pass blocked kernel reads each
            // word pair once instead of three count passes.
            return waste_counts_words(a, b);
        }
        let common = self.intersection_count(other);
        (self.count() - common, other.count() - common)
    }

    /// Weighted directed difference sums `(Σ w[i] for i ∈ self \ other,
    /// Σ w[i] for i ∈ other \ self)` — the aggregated expected-waste
    /// inner loop, where each member is a canonical class standing for
    /// `weights[i]` concrete subscribers. Every representation pair
    /// sums exactly the members the dense
    /// [`BitSet::weighted_waste_counts`] would, so the compressed
    /// layout can never change a weighted clustering decision.
    ///
    /// # Panics
    ///
    /// Panics on universe mismatch, or if `weights` is shorter than a
    /// member index.
    pub fn weighted_waste_counts(&self, other: &CompressedSet, weights: &[u64]) -> (u64, u64) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        match (&self.repr, &other.repr) {
            (Repr::Bitmap(a), Repr::Bitmap(b)) => weighted_waste_counts_words(a, b, weights),
            (Repr::Array(a), Repr::Array(b)) => {
                let (mut i, mut j) = (0usize, 0usize);
                let (mut only_a, mut only_b) = (0u64, 0u64);
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        std::cmp::Ordering::Less => {
                            only_a += weights[a[i] as usize];
                            i += 1;
                        }
                        std::cmp::Ordering::Greater => {
                            only_b += weights[b[j] as usize];
                            j += 1;
                        }
                        std::cmp::Ordering::Equal => {
                            i += 1;
                            j += 1;
                        }
                    }
                }
                only_a += a[i..].iter().map(|&x| weights[x as usize]).sum::<u64>();
                only_b += b[j..].iter().map(|&x| weights[x as usize]).sum::<u64>();
                (only_a, only_b)
            }
            (Repr::Array(a), Repr::Bitmap(w)) => weighted_array_vs_bitmap(a, w, weights),
            (Repr::Bitmap(w), Repr::Array(a)) => {
                let (only_arr, only_bmp) = weighted_array_vs_bitmap(a, w, weights);
                (only_bmp, only_arr)
            }
        }
    }

    /// Applies the promotion/demotion policy after a mutation.
    fn rebalance(&mut self) {
        match &self.repr {
            Repr::Array(v) => {
                if v.len() > promote_at(self.universe) {
                    let mut words = vec![0u64; self.universe.div_ceil(WORD_BITS)];
                    for &i in v {
                        words[i as usize / WORD_BITS] |= 1 << (i as usize % WORD_BITS);
                    }
                    self.repr = Repr::Bitmap(words);
                }
            }
            Repr::Bitmap(_) => {
                if self.count() < demote_at(self.universe) {
                    let members: Vec<u32> = self.iter().map(|i| i as u32).collect();
                    self.repr = Repr::Array(members);
                }
            }
        }
    }
}

/// Weighted exclusives for the mixed representation pair: `(Σ w[i] for
/// i ∈ arr \ bitmap, Σ w[i] for i ∈ bitmap \ arr)`. The array side
/// probes bitmap words directly; the bitmap side walks its set bits
/// with a merge pointer into the sorted array, so each side is scanned
/// once.
fn weighted_array_vs_bitmap(arr: &[u32], words: &[u64], weights: &[u64]) -> (u64, u64) {
    let mut only_arr = 0u64;
    for &i in arr {
        let i = i as usize;
        if words[i / WORD_BITS] & (1 << (i % WORD_BITS)) == 0 {
            only_arr += weights[i];
        }
    }
    let mut only_bmp = 0u64;
    let mut p = 0usize;
    for (wi, &word) in words.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            let b = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let i = wi * WORD_BITS + b;
            while p < arr.len() && (arr[p] as usize) < i {
                p += 1;
            }
            if p < arr.len() && arr[p] as usize == i {
                p += 1;
            } else {
                only_bmp += weights[i];
            }
        }
    }
    (only_arr, only_bmp)
}

fn promote_at(universe: usize) -> usize {
    (universe / PROMOTE_DIV).max(PROMOTE_MIN)
}

fn demote_at(universe: usize) -> usize {
    (universe / DEMOTE_DIV).max(PROMOTE_MIN / 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set() {
        let s = CompressedSet::new(500);
        assert!(s.is_empty());
        assert!(s.is_array());
        assert_eq!(s.count(), 0);
        assert_eq!(s.to_bitset(), BitSet::new(500));
        assert_eq!(s.iter().count(), 0);
        assert!(!s.contains(0));
    }

    #[test]
    fn full_universe_promotes_to_bitmap() {
        let mut s = CompressedSet::new(1024);
        for i in 0..1024 {
            assert!(s.insert(i));
        }
        assert!(!s.is_array());
        assert_eq!(s.count(), 1024);
        assert_eq!(s.to_bitset(), BitSet::from_members(1024, 0..1024));
        assert!(s.contains(0) && s.contains(1023));
    }

    #[test]
    fn single_bit_stays_array() {
        let mut s = CompressedSet::new(1 << 20);
        s.insert(777_777);
        assert!(s.is_array());
        assert_eq!(s.count(), 1);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![777_777]);
    }

    #[test]
    fn grow_across_word_boundaries_preserves_members() {
        let mut s = CompressedSet::new(63);
        for i in [0usize, 31, 62] {
            s.insert(i);
        }
        for new_len in [64usize, 65, 128, 129, 1000] {
            s.grow(new_len);
            assert_eq!(s.universe(), new_len);
            assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 31, 62]);
        }
        s.insert(999);
        assert_eq!(s.count(), 4);
        // Shrinking is a no-op.
        s.grow(10);
        assert_eq!(s.universe(), 1000);
    }

    #[test]
    fn promotion_demotion_round_trip_is_lossless() {
        let universe = 640; // promote at 20, demote below 10
        let mut s = CompressedSet::new(universe);
        let mut oracle = BitSet::new(universe);
        assert!(s.is_array());
        for i in 0..promote_at(universe) + 5 {
            s.insert(i * 3);
            oracle.insert(i * 3);
        }
        assert!(!s.is_array(), "should have promoted");
        assert_eq!(s.to_bitset(), oracle);
        // Remove until demotion; members must survive the rebuild.
        let members: Vec<usize> = s.iter().collect();
        for &m in members.iter().skip(demote_at(universe) - 1) {
            s.remove(m);
            oracle.remove(m);
        }
        assert!(s.is_array(), "should have demoted");
        assert_eq!(s.to_bitset(), oracle);
        assert_eq!(s.count(), oracle.count());
    }

    #[test]
    fn gallop_and_merge_agree() {
        let a: Vec<u32> = (0..1000).step_by(7).collect();
        let b: Vec<u32> = (0..1000).step_by(3).collect();
        let tiny: Vec<u32> = vec![21, 42, 500, 999];
        for (x, y) in [(&a, &b), (&tiny, &b), (&tiny, &a)] {
            assert_eq!(
                gallop_intersect_count(x, y),
                merge_intersect_count(x, y),
                "gallop vs merge"
            );
        }
        assert_eq!(gallop_intersect_count(&[], &a), 0);
        assert_eq!(merge_intersect_count(&a, &[]), 0);
    }

    #[test]
    fn waste_counts_match_dense_across_representations() {
        let universe = 2048;
        // One sparse (array) set, one dense (bitmap) set.
        let sparse = BitSet::from_members(universe, (0..universe).step_by(131));
        let dense = BitSet::from_members(universe, (0..universe).filter(|i| i % 3 != 0));
        let cs = CompressedSet::from_bitset(&sparse);
        let cd = CompressedSet::from_bitset(&dense);
        assert!(cs.is_array());
        assert!(!cd.is_array());
        for (x, y, bx, by) in [
            (&cs, &cd, &sparse, &dense),
            (&cd, &cs, &dense, &sparse),
            (&cs, &cs, &sparse, &sparse),
            (&cd, &cd, &dense, &dense),
        ] {
            assert_eq!(x.waste_counts(y), bx.waste_counts(by));
            assert_eq!(x.intersection_count(y), bx.intersection_count(by));
        }
    }

    #[test]
    fn weighted_waste_counts_match_dense_across_representations() {
        let universe = 2048;
        let weights: Vec<u64> = (0..universe as u64).map(|i| (i % 13) + 1).collect();
        let sparse = BitSet::from_members(universe, (0..universe).step_by(131));
        let dense = BitSet::from_members(universe, (0..universe).filter(|i| i % 3 != 0));
        let cs = CompressedSet::from_bitset(&sparse);
        let cd = CompressedSet::from_bitset(&dense);
        assert!(cs.is_array());
        assert!(!cd.is_array());
        for (x, y, bx, by) in [
            (&cs, &cd, &sparse, &dense),
            (&cd, &cs, &dense, &sparse),
            (&cs, &cs, &sparse, &sparse),
            (&cd, &cd, &dense, &dense),
        ] {
            assert_eq!(
                x.weighted_waste_counts(y, &weights),
                bx.weighted_waste_counts(by, &weights)
            );
        }
        // All-ones weights reduce to the unweighted counts.
        let ones = vec![1u64; universe];
        let (oa, ob) = cs.weighted_waste_counts(&cd, &ones);
        let (ua, ub) = cs.waste_counts(&cd);
        assert_eq!((oa as usize, ob as usize), (ua, ub));
    }
}
