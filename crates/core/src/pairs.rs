//! Pairwise Grouping (Section 4.3 of the paper) and its approximate
//! variant.
//!
//! A bottom-up agglomerative clustering: every hyper-cell starts as its
//! own group; while more than `K` groups remain, the two groups at
//! minimum expected-waste distance are merged (Figure 2).
//!
//! The **exact** variant always merges the globally closest pair. (The
//! paper's formulation re-scans all pairs each step; we keep a
//! nearest-neighbour array, which merges the identical sequence of pairs
//! with a much better constant — the full-scan behaviour survives in the
//! benchmarks as `pairs-fullscan` for the Figure 10/11 runtime curves.)
//!
//! The **approximate** variant applies the secretary rule: at each step
//! it inspects a fraction `1/e` of the pair combinations, remembers the
//! best distance seen, then keeps scanning and merges the first pair
//! that beats it (falling back to the remembered best). Faster, possibly
//! poorer merges.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::clustering::{group_distance, Clustering, ClusteringAlgorithm};
use crate::distance::DistanceMatrix;
use crate::framework::GridFramework;
use crate::membership::BitSet;
use crate::parallel;

/// How pairwise grouping searches for the next pair to merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairsStrategy {
    /// Merge the globally closest pair (nearest-neighbour bookkeeping).
    Exact,
    /// Merge the globally closest pair with a full rescan of all pairs
    /// at each step — the paper's literal formulation; same output as
    /// [`PairsStrategy::Exact`] but `O(l³)`. Kept for runtime ablations.
    ExactFullScan,
    /// Secretary-rule scan: inspect `1/e` of the pairs, then take the
    /// first improvement (seeded for reproducibility).
    Approximate {
        /// RNG seed for the scan order.
        seed: u64,
    },
}

/// The pairwise grouping algorithm.
///
/// # Examples
///
/// ```
/// use geometry::{Grid, Interval, Rect};
/// use pubsub_core::{
///     CellProbability, ClusteringAlgorithm, GridFramework, PairsStrategy, PairwiseGrouping,
/// };
///
/// let grid = Grid::cube(0.0, 10.0, 1, 10)?;
/// let subs = vec![
///     Rect::new(vec![Interval::new(0.0, 4.0)?]),
///     Rect::new(vec![Interval::new(6.0, 10.0)?]),
/// ];
/// let probs = CellProbability::uniform(&grid);
/// let fw = GridFramework::build(grid, &subs, &probs, None);
/// let c = PairwiseGrouping::new(PairsStrategy::Exact).cluster(&fw, 1);
/// assert_eq!(c.num_groups(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairwiseGrouping {
    strategy: PairsStrategy,
}

/// Live state of one group during agglomeration.
#[derive(Debug, Clone)]
struct GroupState {
    members: BitSet,
    prob: f64,
    hypercells: Vec<usize>,
}

impl PairwiseGrouping {
    /// Creates the algorithm with the given merge-search strategy.
    pub fn new(strategy: PairsStrategy) -> Self {
        PairwiseGrouping { strategy }
    }

    /// The strategy in use.
    pub fn strategy(&self) -> PairsStrategy {
        self.strategy
    }
}

impl ClusteringAlgorithm for PairwiseGrouping {
    fn name(&self) -> &'static str {
        match self.strategy {
            PairsStrategy::Exact => "pairs",
            PairsStrategy::ExactFullScan => "pairs-fullscan",
            PairsStrategy::Approximate { .. } => "approx-pairs",
        }
    }

    fn cluster(&self, framework: &GridFramework, k: usize) -> Clustering {
        let hcs = framework.hypercells();
        let l = hcs.len();
        if l == 0 {
            return Clustering::from_assignment(framework, Vec::new());
        }
        let k = k.max(1).min(l);

        let mut groups: Vec<Option<GroupState>> = hcs
            .iter()
            .enumerate()
            .map(|(h, hc)| {
                Some(GroupState {
                    members: hc.members.clone(),
                    prob: hc.prob,
                    hypercells: vec![h],
                })
            })
            .collect();
        let mut alive = l;

        // While both endpoints of a candidate pair are still singleton
        // groups (the common case early in agglomeration), their distance
        // is a shared-cache lookup instead of a bit-vector walk.
        let matrix = framework.distance_matrix();
        let weights = framework.weights_ref();
        match self.strategy {
            PairsStrategy::Exact => {
                merge_exact_nn(&mut groups, &mut alive, k, matrix, weights);
            }
            PairsStrategy::ExactFullScan => {
                merge_exact_fullscan(&mut groups, &mut alive, k, matrix, weights);
            }
            PairsStrategy::Approximate { seed } => {
                merge_approximate(&mut groups, &mut alive, k, seed, matrix, weights);
            }
        }

        // Materialize the assignment.
        let mut assignment = vec![usize::MAX; l];
        for (next, group) in groups.into_iter().flatten().enumerate() {
            for h in group.hypercells {
                assignment[h] = next;
            }
        }
        Clustering::from_assignment(framework, assignment)
    }
}

fn dist(a: &GroupState, b: &GroupState, weights: Option<&[u64]>) -> f64 {
    group_distance(a.prob, &a.members, b.prob, &b.members, weights)
}

/// Group distance, served from the shared cache when both groups are
/// still singleton hyper-cells. A singleton's membership vector and
/// probability are exactly its hyper-cell's, and the cache stores the
/// very `expected_waste` value `dist` would compute (weighted builds
/// cache the weighted value), so the lookup is bit-identical to the
/// direct path.
fn dist_cached(
    matrix: Option<&DistanceMatrix>,
    a: &GroupState,
    b: &GroupState,
    weights: Option<&[u64]>,
) -> f64 {
    if let (Some(m), &[ia], &[ib]) = (matrix, a.hypercells.as_slice(), b.hypercells.as_slice()) {
        m.get(ia, ib)
    } else {
        dist(a, b, weights)
    }
}

/// Merge `b` into `a`.
fn merge_into(groups: &mut [Option<GroupState>], a: usize, b: usize) {
    let gb = groups[b].take().expect("merge source is alive");
    let ga = groups[a].as_mut().expect("merge target is alive");
    ga.members.union_with(&gb.members);
    ga.prob += gb.prob;
    ga.hypercells.extend(gb.hypercells);
}

/// Exact agglomeration with nearest-neighbour bookkeeping: merges the
/// globally closest pair each step.
fn merge_exact_nn(
    groups: &mut [Option<GroupState>],
    alive: &mut usize,
    k: usize,
    matrix: Option<&DistanceMatrix>,
    weights: Option<&[u64]>,
) {
    let l = groups.len();
    // nn[i] = (distance, j) of i's nearest alive neighbour.
    let recompute_nn = |groups: &[Option<GroupState>], i: usize| -> Option<(f64, usize)> {
        let gi = groups[i].as_ref()?;
        let mut best: Option<(f64, usize)> = None;
        for (j, gj) in groups.iter().enumerate() {
            if j == i {
                continue;
            }
            if let Some(gj) = gj {
                let d = dist_cached(matrix, gi, gj, weights);
                if best.is_none_or(|(bd, _)| d < bd) {
                    best = Some((d, j));
                }
            }
        }
        best
    };
    // The O(l²) initialization scans rows independently — fan out. Each
    // row's scan order (ascending j, strict improvement) is unchanged,
    // so the per-row result is identical to the serial loop.
    let groups_ref: &[Option<GroupState>] = groups;
    let mut nn: Vec<Option<(f64, usize)>> =
        parallel::par_map_indexed(l, 32, |i| recompute_nn(groups_ref, i));
    while *alive > k {
        // Globally closest pair = min over nn.
        let (i, (_, j)) = nn
            .iter()
            .enumerate()
            .filter_map(|(i, &e)| e.map(|e| (i, e)))
            .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).expect("distance is never NaN"))
            .expect("at least two groups alive");
        merge_into(groups, i, j);
        *alive -= 1;
        nn[j] = None;
        // Any group whose nearest neighbour was i or j must rescan; the
        // merged group only grew, so distances to it may have changed.
        // The rescans are independent row scans — fan out when there are
        // enough of them.
        let mut stale: Vec<usize> = vec![i];
        for (g, entry) in nn.iter().enumerate() {
            match entry {
                Some((_, t)) if g != i && (*t == i || *t == j) => stale.push(g),
                _ => {}
            }
        }
        let groups_ref: &[Option<GroupState>] = groups;
        let refreshed = parallel::par_map(&stale, 32, |&g| recompute_nn(groups_ref, g));
        for (&g, entry) in stale.iter().zip(refreshed) {
            nn[g] = entry;
        }
    }
}

/// The paper's literal `O(l³)` variant: full pair scan per merge.
fn merge_exact_fullscan(
    groups: &mut [Option<GroupState>],
    alive: &mut usize,
    k: usize,
    matrix: Option<&DistanceMatrix>,
    weights: Option<&[u64]>,
) {
    while *alive > k {
        let ids: Vec<usize> = (0..groups.len()).filter(|&i| groups[i].is_some()).collect();
        let n = ids.len();
        // Scan the upper triangle in parallel, one contiguous block of
        // rows per chunk. The serial loop picks the *first* pair (in
        // row-major order) attaining the minimum; taking each chunk's
        // first-minimum and then combining the chunks in order with a
        // strict `<` reproduces exactly that pair for any chunking.
        let groups_ref: &[Option<GroupState>] = groups;
        let ids_ref: &[usize] = &ids;
        let chunk = n.div_ceil(parallel::num_threads() * 4).max(1);
        let best = parallel::par_chunks(n, chunk, |rows| {
            let mut best: Option<(f64, usize, usize)> = None;
            for x in rows {
                let i = ids_ref[x];
                let gi = groups_ref[i].as_ref().expect("alive");
                for &j in &ids_ref[x + 1..] {
                    let d =
                        dist_cached(matrix, gi, groups_ref[j].as_ref().expect("alive"), weights);
                    if best.is_none_or(|(bd, _, _)| d < bd) {
                        best = Some((d, i, j));
                    }
                }
            }
            best
        })
        .into_iter()
        .flatten()
        .reduce(|acc, cand| if cand.0 < acc.0 { cand } else { acc });
        let (_, i, j) = best.expect("at least two groups alive");
        merge_into(groups, i, j);
        *alive -= 1;
    }
}

/// Secretary-rule approximate merge: per step, scan pairs in a random
/// order; after `m/e` pairs, remember the best and stop at the first
/// improvement.
fn merge_approximate(
    groups: &mut [Option<GroupState>],
    alive: &mut usize,
    k: usize,
    seed: u64,
    matrix: Option<&DistanceMatrix>,
    weights: Option<&[u64]>,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    while *alive > k {
        let ids: Vec<usize> = (0..groups.len()).filter(|&i| groups[i].is_some()).collect();
        let n = ids.len();
        let m = n * (n - 1) / 2;
        let observe = ((m as f64) / std::f64::consts::E).ceil() as usize;
        let mut best: Option<(f64, usize, usize)> = None;
        let mut chosen: Option<(usize, usize)> = None;
        // Random starting offset gives each step a fresh scan order
        // without materializing all pairs. The (x, y) cursor advances
        // incrementally — computing the position from scratch per pair
        // would cost O(n) each.
        let start = rng.gen_range(0..m.max(1));
        let (mut x, mut y) = pair_at(start, n);
        for t in 0..m {
            let (i, j) = (ids[x], ids[y]);
            // Advance the upper-triangle cursor, wrapping at the end.
            y += 1;
            if y == n {
                x += 1;
                if x == n - 1 {
                    x = 0;
                }
                y = x + 1;
            }
            // The scan order is RNG-driven and must stay sequential (the
            // secretary rule stops at the first improvement), but each
            // probe still benefits from the shared cache.
            let d = dist_cached(
                matrix,
                groups[i].as_ref().expect("alive"),
                groups[j].as_ref().expect("alive"),
                weights,
            );
            if t < observe {
                if best.is_none_or(|(bd, _, _)| d < bd) {
                    best = Some((d, i, j));
                }
            } else if best.is_none_or(|(bd, _, _)| d < bd) {
                chosen = Some((i, j));
                break;
            }
        }
        let (i, j) = chosen.unwrap_or_else(|| {
            let (_, i, j) = best.expect("at least one pair");
            (i, j)
        });
        merge_into(groups, i, j);
        *alive -= 1;
    }
}

/// The `t`-th pair `(x, y)` with `x < y` in the row-major enumeration of
/// the upper triangle of an `n × n` matrix.
fn pair_at(t: usize, n: usize) -> (usize, usize) {
    // Row x contains (n - 1 - x) pairs.
    let mut x = 0usize;
    let mut t = t;
    loop {
        let row = n - 1 - x;
        if t < row {
            return (x, x + 1 + t);
        }
        t -= row;
        x += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::CellProbability;
    use geometry::{Grid, Interval, Rect};

    fn rect1(lo: f64, hi: f64) -> Rect {
        Rect::new(vec![Interval::new(lo, hi).unwrap()])
    }

    fn two_communities() -> GridFramework {
        let grid = Grid::cube(0.0, 20.0, 1, 20).unwrap();
        let mut subs = Vec::new();
        for i in 0..5 {
            subs.push(rect1(i as f64 * 0.5, 8.0 - i as f64 * 0.5));
        }
        for i in 0..5 {
            subs.push(rect1(12.0 + i as f64 * 0.5, 20.0 - i as f64 * 0.5));
        }
        let probs = CellProbability::uniform(&grid);
        GridFramework::build(grid, &subs, &probs, None)
    }

    #[test]
    fn pair_at_enumerates_upper_triangle() {
        let n = 5;
        let mut seen = Vec::new();
        for t in 0..(n * (n - 1) / 2) {
            seen.push(pair_at(t, n));
        }
        assert_eq!(
            seen,
            vec![
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (1, 2),
                (1, 3),
                (1, 4),
                (2, 3),
                (2, 4),
                (3, 4)
            ]
        );
    }

    #[test]
    fn exact_separates_communities() {
        let fw = two_communities();
        let c = PairwiseGrouping::new(PairsStrategy::Exact).cluster(&fw, 2);
        assert_eq!(c.num_groups(), 2);
        for g in c.groups() {
            let low = g.members.iter().filter(|&m| m < 5).count();
            let high = g.members.iter().filter(|&m| m >= 5).count();
            assert!(low == 0 || high == 0, "mixed group");
        }
    }

    #[test]
    fn nn_variant_matches_fullscan_output() {
        let fw = two_communities();
        for k in [1, 2, 3, 5] {
            let a = PairwiseGrouping::new(PairsStrategy::Exact).cluster(&fw, k);
            let b = PairwiseGrouping::new(PairsStrategy::ExactFullScan).cluster(&fw, k);
            assert_eq!(
                a.total_expected_waste(&fw),
                b.total_expected_waste(&fw),
                "k={k}"
            );
            assert_eq!(a.num_groups(), b.num_groups(), "k={k}");
        }
    }

    #[test]
    fn approximate_reaches_k_groups() {
        let fw = two_communities();
        let c = PairwiseGrouping::new(PairsStrategy::Approximate { seed: 42 }).cluster(&fw, 3);
        assert_eq!(c.num_groups(), 3);
        let total: usize = c.groups().iter().map(|g| g.hypercells.len()).sum();
        assert_eq!(total, fw.hypercells().len());
    }

    #[test]
    fn hierarchical_merges_are_monotone_refinements() {
        // With K+1 groups, every group must be a subset of some K-group
        // (hierarchical algorithms subdivide, never re-mix).
        let fw = two_communities();
        let alg = PairwiseGrouping::new(PairsStrategy::Exact);
        let coarse = alg.cluster(&fw, 2);
        let fine = alg.cluster(&fw, 4);
        for fine_g in fine.groups() {
            let covered = coarse
                .groups()
                .iter()
                .any(|cg| fine_g.hypercells.iter().all(|h| cg.hypercells.contains(h)));
            assert!(covered, "fine group not nested in any coarse group");
        }
    }

    #[test]
    fn k_one_merges_everything() {
        let fw = two_communities();
        for strategy in [
            PairsStrategy::Exact,
            PairsStrategy::ExactFullScan,
            PairsStrategy::Approximate { seed: 7 },
        ] {
            let c = PairwiseGrouping::new(strategy).cluster(&fw, 1);
            assert_eq!(c.num_groups(), 1, "{strategy:?}");
        }
    }

    #[test]
    fn empty_framework() {
        let grid = Grid::cube(0.0, 10.0, 1, 10).unwrap();
        let probs = CellProbability::uniform(&grid);
        let fw = GridFramework::build(grid, &[], &probs, None);
        let c = PairwiseGrouping::new(PairsStrategy::Exact).cluster(&fw, 3);
        assert_eq!(c.num_groups(), 0);
    }

    #[test]
    fn names() {
        assert_eq!(PairwiseGrouping::new(PairsStrategy::Exact).name(), "pairs");
        assert_eq!(
            PairwiseGrouping::new(PairsStrategy::ExactFullScan).name(),
            "pairs-fullscan"
        );
        assert_eq!(
            PairwiseGrouping::new(PairsStrategy::Approximate { seed: 0 }).name(),
            "approx-pairs"
        );
    }
}
