//! Hash-consing of membership vectors.
//!
//! The incremental churn pipeline re-derives per-cell membership
//! vectors for dirty cells only, then needs to answer "which hyper-cell
//! does this vector belong to" and "what is the waste between these two
//! vectors" many times per update. [`MembershipPool`] interns each
//! distinct [`BitSet`] once and hands out a small integer
//! [`MembershipId`]; equality of vectors becomes id equality (the
//! hyper-cell merge test), and the directed difference counts behind
//! the expected-waste distance are memoized per *id pair*, so repeated
//! distance evaluations against an unchanged hyper-cell cost a hash
//! lookup instead of a word-by-word scan.
//!
//! Ids are content-addressed over the set's members, not its universe:
//! growing the universe (new subscriber slots, all absent) preserves
//! every id and every memoized count, which is what lets the pool
//! persist across churn epochs.

use std::collections::HashMap;

use crate::compressed::CompressedSet;
use crate::knob::env_knob;
use crate::membership::BitSet;

/// Interned handle of a membership vector inside a [`MembershipPool`].
///
/// Two ids issued by the *same* pool are equal iff the vectors they
/// name have identical members. Ids from different pools are unrelated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MembershipId(pub(crate) u32);

impl MembershipId {
    /// The raw pool slot.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Memoized waste-count entries above this size are discarded wholesale
/// before the next batch is inserted — the safety valve that keeps
/// million-subscriber runs from growing the per-pair memo without
/// limit. Overridable via `PUBSUB_POOL_MEMO_CAP` (default 2^20 pairs
/// ≈ 24 MB); the counts are pure functions of the id pair, so a smaller
/// cap only costs recomputation, never correctness.
fn memo_cap() -> usize {
    env_knob("PUBSUB_POOL_MEMO_CAP", 1 << 20, |s| s.parse().ok())
}

/// A hash-consing pool of membership [`BitSet`]s with per-pair
/// waste-count memoization.
///
/// # Examples
///
/// ```
/// use pubsub_core::{BitSet, MembershipPool};
///
/// let mut pool = MembershipPool::new(100);
/// let a = pool.intern(BitSet::from_members(100, [1, 2]));
/// let b = pool.intern(BitSet::from_members(100, [2, 1]));
/// let c = pool.intern(BitSet::from_members(100, [3]));
/// assert_eq!(a, b); // same members → same id
/// assert_ne!(a, c);
/// assert_eq!(pool.compute_waste(a, c), (2, 1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MembershipPool {
    universe: usize,
    sets: Vec<BitSet>,
    /// Compressed mirror of every interned set (array or bitmap,
    /// whichever is smaller). When both sides of a waste computation
    /// are in array form the galloping sparse kernel runs instead of
    /// the word scan — same counts, far fewer touched bytes for the
    /// sparse sets that dominate large-universe pools.
    compressed: Vec<CompressedSet>,
    /// Content hash → pool slots with that hash.
    index: HashMap<u64, Vec<u32>>,
    /// `(lo, hi)` id pair → `(|lo \ hi|, |hi \ lo|)`.
    memo: HashMap<(u32, u32), (usize, usize)>,
}

/// FNV-1a over the non-zero prefix of the packed words. Trailing zero
/// words are excluded so the hash survives [`MembershipPool::grow`].
fn content_hash(words: &[u64]) -> u64 {
    let n = words.iter().rposition(|&w| w != 0).map_or(0, |p| p + 1);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &w in &words[..n] {
        h ^= w;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

impl MembershipPool {
    /// An empty pool whose sets range over `0..universe`.
    pub fn new(universe: usize) -> Self {
        MembershipPool {
            universe,
            sets: Vec::new(),
            compressed: Vec::new(),
            index: HashMap::new(),
            memo: HashMap::new(),
        }
    }

    /// The subscriber universe all interned sets share.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of distinct vectors interned.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether no vector has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Interns `set`, returning the id of the unique pool entry with the
    /// same members. The pool takes ownership; an already-known vector
    /// is dropped and its existing id returned.
    ///
    /// # Panics
    ///
    /// Panics if `set`'s universe differs from the pool's.
    pub fn intern(&mut self, set: BitSet) -> MembershipId {
        assert_eq!(
            set.universe(),
            self.universe,
            "pool universe mismatch (grow the pool first)"
        );
        let h = content_hash(set.words());
        let slots = self.index.entry(h).or_default();
        for &s in slots.iter() {
            if self.sets[s as usize] == set {
                return MembershipId(s);
            }
        }
        let id = u32::try_from(self.sets.len()).expect("pool overflow");
        slots.push(id);
        self.compressed.push(CompressedSet::from_bitset(&set));
        self.sets.push(set);
        MembershipId(id)
    }

    /// The interned vector behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this pool.
    pub fn get(&self, id: MembershipId) -> &BitSet {
        &self.sets[id.index()]
    }

    /// The compressed mirror behind `id` (array or bitmap, whichever
    /// is smaller). The weighted distance rebuild streams these
    /// directly instead of re-deriving a compressed copy per epoch.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this pool.
    pub(crate) fn compressed(&self, id: MembershipId) -> &CompressedSet {
        &self.compressed[id.index()]
    }

    /// Extends every interned set's universe to `new_universe` (new
    /// indices absent). Ids, hashes and memoized counts all remain
    /// valid: the members are untouched.
    pub fn grow(&mut self, new_universe: usize) {
        if new_universe <= self.universe {
            return;
        }
        self.universe = new_universe;
        for s in &mut self.sets {
            s.grow(new_universe);
        }
        for c in &mut self.compressed {
            c.grow(new_universe);
        }
    }

    /// The memoized waste counts `(|a \ b|, |b \ a|)` for the pair, if
    /// a previous [`MembershipPool::memoize_waste`] recorded them.
    /// Read-only, so callers can consult the memo from parallel workers.
    pub fn cached_waste(&self, a: MembershipId, b: MembershipId) -> Option<(usize, usize)> {
        if a == b {
            return Some((0, 0));
        }
        let (lo, hi, flip) = if a.0 < b.0 {
            (a.0, b.0, false)
        } else {
            (b.0, a.0, true)
        };
        self.memo
            .get(&(lo, hi))
            .map(|&(x, y)| if flip { (y, x) } else { (x, y) })
    }

    /// Computes `(|a \ b|, |b \ a|)` directly from the interned sets
    /// (no memo read or write). When both compressed mirrors are in
    /// array form the galloping sparse kernel runs; otherwise the
    /// single-pass blocked kernel of [`BitSet::waste_counts`] does.
    /// Both arms count the same members, so callers cannot observe the
    /// choice.
    pub fn compute_waste(&self, a: MembershipId, b: MembershipId) -> (usize, usize) {
        let (ca, cb) = (&self.compressed[a.index()], &self.compressed[b.index()]);
        if ca.is_array() && cb.is_array() {
            ca.waste_counts(cb)
        } else {
            self.sets[a.index()].waste_counts(&self.sets[b.index()])
        }
    }

    /// Records a batch of computed waste counts, keyed by the id pair
    /// and oriented as passed. Entries for already-memoized pairs are
    /// overwritten (the counts are pure functions of the pair, so the
    /// value cannot change). When the memo exceeds its cap it is
    /// cleared before the batch lands.
    pub fn memoize_waste(
        &mut self,
        entries: impl IntoIterator<Item = ((MembershipId, MembershipId), (usize, usize))>,
    ) {
        if self.memo.len() > memo_cap() {
            self.memo.clear();
        }
        for ((a, b), (x, y)) in entries {
            if a == b {
                continue;
            }
            let (key, val) = if a.0 < b.0 {
                ((a.0, b.0), (x, y))
            } else {
                ((b.0, a.0), (y, x))
            };
            self.memo.insert(key, val);
        }
    }

    /// Memoized waste counts: consults the cache, computing and
    /// recording the pair on a miss.
    pub fn waste_counts(&mut self, a: MembershipId, b: MembershipId) -> (usize, usize) {
        if let Some(c) = self.cached_waste(a, b) {
            return c;
        }
        let c = self.compute_waste(a, b);
        self.memoize_waste([((a, b), c)]);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_content_addressed() {
        let mut pool = MembershipPool::new(200);
        let a = pool.intern(BitSet::from_members(200, [0, 64, 199]));
        let b = pool.intern(BitSet::from_members(200, [199, 0, 64]));
        let c = pool.intern(BitSet::from_members(200, [0, 64]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.get(a), &BitSet::from_members(200, [0, 64, 199]));
        assert_eq!(a.index(), 0);
    }

    #[test]
    fn ids_survive_universe_growth() {
        let mut pool = MembershipPool::new(70);
        let a = pool.intern(BitSet::from_members(70, [3, 69]));
        pool.grow(500);
        assert_eq!(pool.universe(), 500);
        // The same members at the new universe re-resolve to the old id.
        let again = pool.intern(BitSet::from_members(500, [3, 69]));
        assert_eq!(a, again);
        assert_eq!(pool.get(a).universe(), 500);
    }

    #[test]
    fn waste_counts_match_bitset_kernel_and_memoize() {
        let mut pool = MembershipPool::new(150);
        let a = pool.intern(BitSet::from_members(150, [1, 2, 3, 70]));
        let b = pool.intern(BitSet::from_members(150, [2, 3, 4, 71, 140]));
        let direct = pool.get(a).waste_counts(pool.get(b));
        assert_eq!(pool.cached_waste(a, b), None);
        assert_eq!(pool.waste_counts(a, b), direct);
        // Both orientations now hit the memo, correctly flipped.
        assert_eq!(pool.cached_waste(a, b), Some(direct));
        assert_eq!(pool.cached_waste(b, a), Some((direct.1, direct.0)));
        assert_eq!(pool.waste_counts(b, a), (direct.1, direct.0));
        // Self-pairs are always (0, 0) without touching the memo.
        assert_eq!(pool.cached_waste(a, a), Some((0, 0)));
    }

    #[test]
    fn memoize_batch_normalizes_orientation() {
        let mut pool = MembershipPool::new(10);
        let a = pool.intern(BitSet::from_members(10, [1]));
        let b = pool.intern(BitSet::from_members(10, [2, 3]));
        pool.memoize_waste([((b, a), (2, 1)), ((a, a), (9, 9))]);
        assert_eq!(pool.cached_waste(a, b), Some((1, 2)));
        assert_eq!(pool.cached_waste(a, a), Some((0, 0)));
    }

    #[test]
    fn sparse_kernel_matches_dense_counts() {
        // Large universe: sparse sets mirror as arrays, dense as bitmaps.
        let mut pool = MembershipPool::new(4096);
        let sparse_a = pool.intern(BitSet::from_members(4096, (0..4096).step_by(311)));
        let sparse_b = pool.intern(BitSet::from_members(4096, (5..4096).step_by(211)));
        let dense = pool.intern(BitSet::from_members(4096, (0..4096).filter(|i| i % 2 == 0)));
        for (x, y) in [
            (sparse_a, sparse_b),
            (sparse_a, dense),
            (dense, sparse_b),
            (dense, dense),
        ] {
            assert_eq!(
                pool.compute_waste(x, y),
                pool.get(x).waste_counts(pool.get(y)),
                "pair ({x:?}, {y:?})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "pool universe mismatch")]
    fn intern_rejects_wrong_universe() {
        let mut pool = MembershipPool::new(10);
        pool.intern(BitSet::new(11));
    }
}
