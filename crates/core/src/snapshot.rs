//! Epoch-swapped immutable snapshots: the lock-free serve-path handle.
//!
//! The always-on broker loop (DESIGN.md §14) needs ingest threads to
//! read the current [`DispatchPlan`](crate::DispatchPlan) on every
//! event while a background rebalancer occasionally publishes a new
//! one. A mutex around the plan would put every event behind a lock; a
//! true pointer-swapping `ArcSwap` needs `unsafe`. [`SnapshotCell`] is
//! the dependency-free, `forbid(unsafe_code)` middle ground:
//!
//! * the cell holds an `Arc<T>` behind a mutex **plus** a monotone
//!   epoch counter ([`AtomicU64`]);
//! * publishing stores the new `Arc` and bumps the epoch (release);
//! * readers keep a thread-local cached `(epoch, Arc<T>)` pair and
//!   check the epoch with one atomic acquire load per read — the mutex
//!   is touched **only when the epoch moved**, i.e. once per swap per
//!   reader, never per event.
//!
//! In steady state the hot path is exactly one `load(Acquire)` —
//! wait-free — and swaps cost each reader one short, uncontended lock
//! (the publisher holds it for a pointer store). Snapshots are
//! immutable `Arc`s, so a reader that refreshed mid-stream keeps
//! serving its old plan until *it* decides to refresh: every event is
//! decided by exactly one published snapshot, never a torn mix.
//!
//! The epoch is bumped *while holding the slot lock* and readers
//! re-read it under the same lock, so a refreshed cache always pairs
//! the value with the exact epoch it was published under.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// An atomically versioned, hot-swappable immutable value.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use pubsub_core::SnapshotCell;
///
/// let cell = SnapshotCell::new(Arc::new(1u32));
/// let mut reader = cell.reader();
/// assert_eq!(**reader.current(), 1);
/// cell.publish(Arc::new(2u32));
/// assert_eq!(**reader.current(), 2);
/// assert_eq!(cell.epoch(), 1);
/// ```
#[derive(Debug)]
pub struct SnapshotCell<T> {
    /// Published-swap counter; `0` is the initial value's epoch.
    epoch: AtomicU64,
    slot: Mutex<Arc<T>>,
}

impl<T> SnapshotCell<T> {
    /// Creates the cell holding `value` at epoch 0.
    pub fn new(value: Arc<T>) -> Self {
        SnapshotCell {
            epoch: AtomicU64::new(0),
            slot: Mutex::new(value),
        }
    }

    /// A poisoned slot mutex only means a publisher panicked *between*
    /// two pointer stores — the `Arc` inside is always intact, so the
    /// cell keeps serving the last good snapshot instead of spreading
    /// the panic to every ingest thread.
    fn lock_slot(&self) -> MutexGuard<'_, Arc<T>> {
        self.slot.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The current epoch: the number of [`publish`](Self::publish)
    /// calls so far.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Clones the current snapshot (locks briefly; prefer a
    /// [`SnapshotReader`] on hot paths).
    pub fn load(&self) -> Arc<T> {
        Arc::clone(&self.lock_slot())
    }

    /// Clones the current snapshot together with the epoch it was
    /// published under. The pair is consistent: the epoch is read
    /// under the same lock the publisher bumps it under.
    pub fn load_with_epoch(&self) -> (Arc<T>, u64) {
        let guard = self.lock_slot();
        let value = Arc::clone(&guard);
        let epoch = self.epoch.load(Ordering::Acquire);
        (value, epoch)
    }

    /// Atomically replaces the snapshot and returns the new epoch.
    /// Readers observe the swap on their next epoch check; in-flight
    /// reads keep their old `Arc` untouched.
    pub fn publish(&self, value: Arc<T>) -> u64 {
        let mut guard = self.lock_slot();
        *guard = value;
        // Bumped inside the lock so `load_with_epoch` can never pair
        // the new epoch with the old value or vice versa.
        self.epoch.fetch_add(1, Ordering::Release) + 1
    }

    /// Creates a caching reader positioned at the current snapshot.
    pub fn reader(&self) -> SnapshotReader<'_, T> {
        let (cached, epoch) = self.load_with_epoch();
        SnapshotReader {
            cell: self,
            epoch,
            cached,
        }
    }
}

/// A per-thread caching handle over a [`SnapshotCell`].
///
/// [`current`](SnapshotReader::current) costs one atomic load while the
/// epoch is unchanged and refreshes (one short lock) only after a
/// publish — the epoch-style read path of the broker service loop.
#[derive(Debug)]
pub struct SnapshotReader<'a, T> {
    cell: &'a SnapshotCell<T>,
    epoch: u64,
    cached: Arc<T>,
}

impl<'a, T> SnapshotReader<'a, T> {
    /// The freshest snapshot: refreshes the cache iff the cell's epoch
    /// moved since the last call.
    pub fn current(&mut self) -> &Arc<T> {
        if self.cell.epoch.load(Ordering::Acquire) != self.epoch {
            let (value, epoch) = self.cell.load_with_epoch();
            self.cached = value;
            self.epoch = epoch;
        }
        &self.cached
    }

    /// The epoch of the cached snapshot (what
    /// [`current`](SnapshotReader::current) would serve before any
    /// refresh).
    pub fn cached_epoch(&self) -> u64 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn publish_bumps_epoch_and_readers_refresh() {
        let cell = SnapshotCell::new(Arc::new(10u64));
        assert_eq!(cell.epoch(), 0);
        let mut r = cell.reader();
        assert_eq!(**r.current(), 10);
        assert_eq!(r.cached_epoch(), 0);

        assert_eq!(cell.publish(Arc::new(20)), 1);
        assert_eq!(cell.epoch(), 1);
        // The reader still holds the old Arc until it asks again.
        assert_eq!(r.cached_epoch(), 0);
        assert_eq!(**r.current(), 20);
        assert_eq!(r.cached_epoch(), 1);
        assert_eq!(*cell.load(), 20);
    }

    #[test]
    fn load_with_epoch_is_consistent() {
        let cell = SnapshotCell::new(Arc::new(0u64));
        for i in 1..=5 {
            cell.publish(Arc::new(i));
            let (v, e) = cell.load_with_epoch();
            assert_eq!(*v, i);
            assert_eq!(e, i);
        }
    }

    /// Concurrent readers vs a publisher: every observed `(epoch,
    /// value)` pair must be one that was actually published — a torn
    /// pair would mean the lock/epoch protocol is broken. Small
    /// constants keep this tractable under Miri (the CI nightly job
    /// interprets exactly this module's tests).
    #[test]
    fn concurrent_swaps_never_tear() {
        const SWAPS: u64 = 16;
        let cell = SnapshotCell::new(Arc::new(0u64));
        let seen = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    let mut reader = cell.reader();
                    let mut last_epoch = 0;
                    for _ in 0..200 {
                        let value = **reader.current();
                        let epoch = reader.cached_epoch();
                        // Published pairs are exactly value == epoch.
                        assert_eq!(value, epoch, "torn snapshot");
                        assert!(epoch >= last_epoch, "epoch went backwards");
                        last_epoch = epoch;
                        seen.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            scope.spawn(|| {
                for i in 1..=SWAPS {
                    cell.publish(Arc::new(i));
                    std::thread::yield_now();
                }
            });
        });
        assert_eq!(seen.load(Ordering::Relaxed), 400);
        assert_eq!(cell.epoch(), SWAPS);
        assert_eq!(*cell.load(), SWAPS);
    }

    /// An in-flight Arc keeps the old snapshot alive across swaps.
    #[test]
    fn old_snapshots_survive_until_dropped() {
        let cell = SnapshotCell::new(Arc::new(String::from("v0")));
        let held = cell.load();
        cell.publish(Arc::new(String::from("v1")));
        assert_eq!(*held, "v0");
        assert_eq!(*cell.load(), "v1");
        drop(held);
    }
}
