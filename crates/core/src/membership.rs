//! Subscriber membership vectors.
//!
//! Section 4.1 of the paper attaches to each grid cell `a` a *membership
//! vector* `s(a) ∈ {0,1}^Ns` whose non-zero entries are the subscribers
//! interested in the cell. These vectors are the feature vectors of the
//! clustering framework — all distances are computed on them, never on
//! event-space coordinates. This module provides the packed bit-vector
//! they are stored in, with the set operations the expected-waste
//! distance needs (`|A \ B|`, unions, intersections).

use std::fmt;

const WORD_BITS: usize = 64;

/// Words per unrolled popcount block. The block loop has a fixed trip
/// count, so the compiler unrolls it and keeps several popcount lanes
/// in flight; the scalar tail handles at most `POPCOUNT_BLOCK - 1`
/// words. Counts are exact integers, so blocking cannot change any
/// result — it only restructures the loop for autovectorization.
pub(crate) const POPCOUNT_BLOCK: usize = 8;

// lint: hot-path
/// Both directed difference popcounts, `(|a \ b|, |b \ a|)`, over raw
/// word slices in `POPCOUNT_BLOCK`-word unrolled blocks with a
/// scalar tail. Shared kernel of [`BitSet::waste_counts`] (and,
/// through it, `MembershipPool::compute_waste`) — the inner loop of
/// the expected-waste distance.
pub(crate) fn waste_counts_words(a: &[u64], b: &[u64]) -> (usize, usize) {
    let mut blocks_a = a.chunks_exact(POPCOUNT_BLOCK);
    let mut blocks_b = b.chunks_exact(POPCOUNT_BLOCK);
    let mut only_a = 0u64;
    let mut only_b = 0u64;
    for (ba, bb) in blocks_a.by_ref().zip(blocks_b.by_ref()) {
        let mut x = 0u32;
        let mut y = 0u32;
        for (wa, wb) in ba.iter().zip(bb) {
            x += (wa & !wb).count_ones();
            y += (wb & !wa).count_ones();
        }
        only_a += u64::from(x);
        only_b += u64::from(y);
    }
    for (wa, wb) in blocks_a.remainder().iter().zip(blocks_b.remainder()) {
        only_a += u64::from((wa & !wb).count_ones());
        only_b += u64::from((wb & !wa).count_ones());
    }
    (only_a as usize, only_b as usize)
}

/// `|a ∩ b|` over raw word slices, blocked exactly like
/// [`waste_counts_words`]. Shared kernel of the dense branch of the
/// dispatch plan's packed membership intersection.
pub(crate) fn and_popcount_words(a: &[u64], b: &[u64]) -> usize {
    let mut blocks_a = a.chunks_exact(POPCOUNT_BLOCK);
    let mut blocks_b = b.chunks_exact(POPCOUNT_BLOCK);
    let mut total = 0u64;
    for (ba, bb) in blocks_a.by_ref().zip(blocks_b.by_ref()) {
        let mut x = 0u32;
        for (wa, wb) in ba.iter().zip(bb) {
            x += (wa & wb).count_ones();
        }
        total += u64::from(x);
    }
    for (wa, wb) in blocks_a.remainder().iter().zip(blocks_b.remainder()) {
        total += u64::from((wa & wb).count_ones());
    }
    total as usize
}
// lint: hot-path end

/// Weighted directed difference counts `(Σ w[i] for i ∈ a\b,
/// Σ w[i] for i ∈ b\a)` over raw word slices. The weighted analogue of
/// [`waste_counts_words`]: with all weights 1 it returns exactly the
/// unweighted popcounts. Used by the aggregation layer, where each
/// "subscriber" is a canonical class standing for `w` concrete
/// subscribers — the weighted count then equals the concrete count as
/// an exact integer, which is what keeps aggregated clustering
/// bit-identical to the raw path.
pub(crate) fn weighted_waste_counts_words(a: &[u64], b: &[u64], w: &[u64]) -> (u64, u64) {
    let mut only_a = 0u64;
    let mut only_b = 0u64;
    for (wi, (wa, wb)) in a.iter().zip(b).enumerate() {
        let mut da = wa & !wb;
        while da != 0 {
            let bit = da.trailing_zeros() as usize;
            only_a += w[wi * WORD_BITS + bit];
            da &= da - 1;
        }
        let mut db = wb & !wa;
        while db != 0 {
            let bit = db.trailing_zeros() as usize;
            only_b += w[wi * WORD_BITS + bit];
            db &= db - 1;
        }
    }
    (only_a, only_b)
}

/// A fixed-length packed bit vector over subscriber indices.
///
/// # Examples
///
/// ```
/// use pubsub_core::BitSet;
///
/// let mut a = BitSet::new(100);
/// a.insert(3);
/// a.insert(64);
/// let mut b = BitSet::new(100);
/// b.insert(64);
/// assert_eq!(a.difference_count(&b), 1); // {3}
/// assert_eq!(a.intersection_count(&b), 1); // {64}
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    len: usize,
    words: Vec<u64>,
}

impl BitSet {
    /// Creates an empty set over the universe `0..len`.
    pub fn new(len: usize) -> Self {
        BitSet {
            len,
            words: vec![0; len.div_ceil(WORD_BITS)],
        }
    }

    /// Creates a set from the given member indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= len`.
    pub fn from_members(len: usize, members: impl IntoIterator<Item = usize>) -> Self {
        let mut s = BitSet::new(len);
        for m in members {
            s.insert(m);
        }
        s
    }

    /// Size of the universe (not the number of members).
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Adds index `i`; returns whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `i >= universe`.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "index {i} out of universe {}", self.len);
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        let newly = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        newly
    }

    /// Removes index `i`; returns whether it was present.
    ///
    /// # Panics
    ///
    /// Panics if `i >= universe`.
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.len, "index {i} out of universe {}", self.len);
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        present
    }

    /// Extends the universe to `new_len`, keeping all members. The new
    /// indices start absent, so counts and set algebra over existing
    /// members are unchanged. A `new_len` smaller than the current
    /// universe is a no-op (members are never dropped).
    pub fn grow(&mut self, new_len: usize) {
        if new_len <= self.len {
            return;
        }
        self.len = new_len;
        self.words.resize(new_len.div_ceil(WORD_BITS), 0);
    }

    /// The packed words, for content hashing by the interning pool.
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Whether index `i` is a member.
    ///
    /// # Panics
    ///
    /// Panics if `i >= universe`.
    pub fn contains(&self, i: usize) -> bool {
        assert!(i < self.len, "index {i} out of universe {}", self.len);
        self.words[i / WORD_BITS] & (1 << (i % WORD_BITS)) != 0
    }

    /// Number of members.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set has no members.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `|self \ other|` — members of `self` not in `other`.
    ///
    /// # Panics
    ///
    /// Panics on universe mismatch.
    pub fn difference_count(&self, other: &BitSet) -> usize {
        assert_eq!(self.len, other.len, "universe mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & !b).count_ones() as usize)
            .sum()
    }

    /// Both directed difference counts, `(|self \ other|, |other \ self|)`,
    /// in a single blocked pass over the words.
    ///
    /// Equivalent to `(self.difference_count(other),
    /// other.difference_count(self))` but reads each word pair once,
    /// in `POPCOUNT_BLOCK`-word unrolled blocks — this is the inner
    /// loop of the expected-waste distance (see
    /// `waste_counts_words`).
    ///
    /// # Panics
    ///
    /// Panics on universe mismatch.
    pub fn waste_counts(&self, other: &BitSet) -> (usize, usize) {
        assert_eq!(self.len, other.len, "universe mismatch");
        waste_counts_words(&self.words, &other.words)
    }

    /// `|self ∩ other|`.
    ///
    /// # Panics
    ///
    /// Panics on universe mismatch.
    pub fn intersection_count(&self, other: &BitSet) -> usize {
        assert_eq!(self.len, other.len, "universe mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// `|self ∪ other|`.
    ///
    /// # Panics
    ///
    /// Panics on universe mismatch.
    pub fn union_count(&self, other: &BitSet) -> usize {
        assert_eq!(self.len, other.len, "universe mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a | b).count_ones() as usize)
            .sum()
    }

    /// In-place union: `self ← self ∪ other`.
    ///
    /// # Panics
    ///
    /// Panics on universe mismatch.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Whether `self ⊆ other`.
    ///
    /// # Panics
    ///
    /// Panics on universe mismatch.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "universe mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Weighted directed difference counts: `(Σ w[i] for i ∈ self\other,
    /// Σ w[i] for i ∈ other\self)`. With unit weights this equals
    /// [`BitSet::waste_counts`] exactly.
    ///
    /// # Panics
    ///
    /// Panics on universe mismatch or if `weights.len() < universe`.
    pub fn weighted_waste_counts(&self, other: &BitSet, weights: &[u64]) -> (u64, u64) {
        assert_eq!(self.len, other.len, "universe mismatch");
        assert!(weights.len() >= self.len, "weight vector too short");
        weighted_waste_counts_words(&self.words, &other.words, weights)
    }

    /// `Σ w[i]` over the members — the weighted analogue of
    /// [`BitSet::count`].
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() < universe`.
    pub fn weighted_count(&self, weights: &[u64]) -> u64 {
        assert!(weights.len() >= self.len, "weight vector too short");
        self.iter().map(|i| weights[i]).sum()
    }

    /// Iterator over member indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * WORD_BITS + b)
                }
            })
        })
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitSet{{")?;
        for (i, m) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set sized by the largest element (`max + 1`); an empty
    /// iterator yields an empty universe.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let len = items.iter().max().map_or(0, |&m| m + 1);
        BitSet::from_members(len, items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_count() {
        let mut s = BitSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(0)); // duplicate
        assert_eq!(s.count(), 4);
        assert!(s.contains(64));
        assert!(!s.contains(65));
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn out_of_universe_panics() {
        let mut s = BitSet::new(10);
        s.insert(10);
    }

    #[test]
    fn set_algebra() {
        let a = BitSet::from_members(100, [1, 2, 3, 70]);
        let b = BitSet::from_members(100, [2, 3, 4, 71]);
        assert_eq!(a.difference_count(&b), 2); // {1, 70}
        assert_eq!(b.difference_count(&a), 2); // {4, 71}
        assert_eq!(a.intersection_count(&b), 2); // {2, 3}
        assert_eq!(a.union_count(&b), 6);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.count(), 6);
        assert!(a.is_subset(&u));
        assert!(b.is_subset(&u));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn waste_counts_match_two_difference_calls() {
        let a = BitSet::from_members(200, [1, 2, 3, 70, 140, 199]);
        let b = BitSet::from_members(200, [2, 3, 4, 71, 140]);
        assert_eq!(
            a.waste_counts(&b),
            (a.difference_count(&b), b.difference_count(&a))
        );
        assert_eq!(a.waste_counts(&a), (0, 0));
        let empty = BitSet::new(200);
        assert_eq!(a.waste_counts(&empty), (a.count(), 0));
        assert_eq!(empty.waste_counts(&a), (0, a.count()));
    }

    #[test]
    fn iter_yields_sorted_members() {
        let s = BitSet::from_members(200, [190, 0, 64, 5]);
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![0, 5, 64, 190]);
    }

    #[test]
    fn equality_and_hash_by_content() {
        use std::collections::HashMap;
        let a = BitSet::from_members(100, [1, 50]);
        let b = BitSet::from_members(100, [50, 1]);
        assert_eq!(a, b);
        let mut m = HashMap::new();
        m.insert(a, "x");
        assert_eq!(m.get(&b), Some(&"x"));
    }

    #[test]
    fn from_iterator_sizes_universe() {
        let s: BitSet = [3usize, 9, 1].into_iter().collect();
        assert_eq!(s.universe(), 10);
        assert_eq!(s.count(), 3);
        let e: BitSet = std::iter::empty::<usize>().collect();
        assert_eq!(e.universe(), 0);
        assert!(e.is_empty());
    }

    #[test]
    fn remove_clears_membership() {
        let mut s = BitSet::from_members(130, [0, 63, 64, 129]);
        assert!(s.remove(64));
        assert!(!s.remove(64)); // already gone
        assert!(!s.remove(65)); // never present
        assert_eq!(s.count(), 3);
        assert!(!s.contains(64));
        assert!(s.contains(129));
    }

    #[test]
    fn grow_preserves_members_and_counts() {
        let mut s = BitSet::from_members(70, [0, 69]);
        let before: Vec<usize> = s.iter().collect();
        s.grow(200);
        assert_eq!(s.universe(), 200);
        assert_eq!(s.iter().collect::<Vec<_>>(), before);
        // Grown sets compare equal to sets built fresh at the new size.
        assert_eq!(s, BitSet::from_members(200, [0, 69]));
        s.insert(199);
        assert_eq!(s.count(), 3);
        // Shrinking is a no-op.
        s.grow(10);
        assert_eq!(s.universe(), 200);
    }

    #[test]
    fn blocked_kernels_match_scalar_formulations() {
        // Universe sizes straddling the 8-word block boundary: 0..=7
        // full blocks plus every remainder length 0..=7.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            // xorshift* — deterministic, no external RNG needed here.
            seed ^= seed >> 12;
            seed ^= seed << 25;
            seed ^= seed >> 27;
            seed.wrapping_mul(0x2545f4914f6cdd1d)
        };
        for words in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 24, 31] {
            let universe = words * 64 + 5;
            let a = BitSet::from_members(universe, (0..universe).filter(|_| next() % 3 == 0));
            let b = BitSet::from_members(universe, (0..universe).filter(|_| next() % 3 == 0));
            let scalar_only_a: usize = a
                .words
                .iter()
                .zip(&b.words)
                .map(|(x, y)| (x & !y).count_ones() as usize)
                .sum();
            let scalar_only_b: usize = a
                .words
                .iter()
                .zip(&b.words)
                .map(|(x, y)| (y & !x).count_ones() as usize)
                .sum();
            assert_eq!(
                waste_counts_words(&a.words, &b.words),
                (scalar_only_a, scalar_only_b),
                "waste at {words} words"
            );
            let scalar_and: usize = a
                .words
                .iter()
                .zip(&b.words)
                .map(|(x, y)| (x & y).count_ones() as usize)
                .sum();
            assert_eq!(
                and_popcount_words(&a.words, &b.words),
                scalar_and,
                "and at {words} words"
            );
            assert_eq!(a.waste_counts(&b), (scalar_only_a, scalar_only_b));
            assert_eq!(a.intersection_count(&b), scalar_and);
        }
    }

    #[test]
    fn difference_with_self_is_zero() {
        let a = BitSet::from_members(100, [7, 8, 9]);
        assert_eq!(a.difference_count(&a), 0);
        assert_eq!(a.intersection_count(&a), 3);
    }
}
