//! Event → multicast-group matching for grid-based clusterings
//! (Section 4.6, Figure 5 of the paper).
//!
//! Each published event is located in its grid cell; if the cell belongs
//! to a kept hyper-cell, the event is matched to that hyper-cell's
//! group. The matcher then applies the paper's threshold optimization:
//! if too small a proportion of the group is actually interested, the
//! message is unicast to the interested subscribers instead of
//! multicast to the whole group.

use geometry::Point;

use crate::clustering::Clustering;
use crate::framework::GridFramework;
use crate::membership::BitSet;

/// The delivery decision for one event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Multicast to the group's full membership (a superset of the
    /// interested subscribers).
    Multicast {
        /// Index of the matched group.
        group: usize,
    },
    /// Deliver by unicast to the interested subscribers only (no group
    /// matched, or the threshold optimization rejected the multicast).
    Unicast,
}

/// A grid-based event matcher bound to a framework and a clustering.
///
/// # Examples
///
/// ```
/// use geometry::{Grid, Interval, Point, Rect};
/// use pubsub_core::{
///     BitSet, CellProbability, ClusteringAlgorithm, Delivery, GridFramework, GridMatcher,
///     KMeans, KMeansVariant,
/// };
///
/// let grid = Grid::cube(0.0, 10.0, 1, 10)?;
/// let subs = vec![
///     Rect::new(vec![Interval::new(0.0, 5.0)?]),
///     Rect::new(vec![Interval::new(5.0, 10.0)?]),
/// ];
/// let probs = CellProbability::uniform(&grid);
/// let fw = GridFramework::build(grid, &subs, &probs, None);
/// let clustering = KMeans::new(KMeansVariant::Forgy).cluster(&fw, 2);
/// let matcher = GridMatcher::new(&fw, &clustering);
/// let interested = BitSet::from_members(2, [0]);
/// match matcher.match_event(&Point::new(vec![2.0]), &interested) {
///     Delivery::Multicast { .. } => {}
///     Delivery::Unicast => {}
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct GridMatcher<'a> {
    framework: &'a GridFramework,
    clustering: &'a Clustering,
    threshold: f64,
}

impl<'a> GridMatcher<'a> {
    /// Creates a matcher with threshold 0 (always multicast when a
    /// group is matched).
    pub fn new(framework: &'a GridFramework, clustering: &'a Clustering) -> Self {
        GridMatcher {
            framework,
            clustering,
            threshold: 0.0,
        }
    }

    /// Sets the minimum *proportion of group members interested* below
    /// which the matcher falls back to unicast.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is outside `[0, 1]`.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be a proportion"
        );
        self.threshold = threshold;
        self
    }

    /// The configured threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Matches one event. `interested` is the exact set of interested
    /// subscriptions (computed by the caller's matching engine).
    pub fn match_event(&self, p: &Point, interested: &BitSet) -> Delivery {
        let group = match self.clustering.group_of_point(self.framework, p) {
            Some(g) => g,
            None => return Delivery::Unicast,
        };
        let members = &self.clustering.groups()[group].members;
        let size = members.count();
        if size == 0 {
            return Delivery::Unicast;
        }
        let hits = members.intersection_count(interested);
        let proportion = hits as f64 / size as f64;
        if proportion >= self.threshold && hits > 0 {
            Delivery::Multicast { group }
        } else {
            Delivery::Unicast
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::CellProbability;
    use crate::kmeans::{KMeans, KMeansVariant};
    use crate::ClusteringAlgorithm;
    use geometry::{Grid, Interval, Rect};

    fn rect1(lo: f64, hi: f64) -> Rect {
        Rect::new(vec![Interval::new(lo, hi).unwrap()])
    }

    fn setup() -> (GridFramework, Clustering) {
        let grid = Grid::cube(0.0, 10.0, 1, 10).unwrap();
        let subs = vec![rect1(0.0, 5.0), rect1(0.0, 5.0), rect1(5.0, 10.0)];
        let probs = CellProbability::uniform(&grid);
        let fw = GridFramework::build(grid, &subs, &probs, None);
        let c = KMeans::new(KMeansVariant::Forgy).cluster(&fw, 2);
        (fw, c)
    }

    #[test]
    fn matched_event_multicasts() {
        let (fw, c) = setup();
        let m = GridMatcher::new(&fw, &c);
        let interested = BitSet::from_members(3, [0, 1]);
        let d = m.match_event(&Point::new(vec![2.0]), &interested);
        match d {
            Delivery::Multicast { group } => {
                // The matched group contains the interested subscribers.
                assert!(interested.is_subset(&c.groups()[group].members));
            }
            Delivery::Unicast => panic!("expected multicast"),
        }
    }

    #[test]
    fn off_grid_event_unicasts() {
        let (fw, c) = setup();
        let m = GridMatcher::new(&fw, &c);
        let interested = BitSet::new(3);
        assert_eq!(
            m.match_event(&Point::new(vec![100.0]), &interested),
            Delivery::Unicast
        );
    }

    #[test]
    fn nobody_interested_unicasts() {
        let (fw, c) = setup();
        let m = GridMatcher::new(&fw, &c);
        // Event lands in a cell, but the interested set is empty: a
        // multicast would be pure waste.
        let interested = BitSet::new(3);
        assert_eq!(
            m.match_event(&Point::new(vec![2.0]), &interested),
            Delivery::Unicast
        );
    }

    #[test]
    fn threshold_rejects_low_interest_multicasts() {
        let (fw, c) = setup();
        // Only subscriber 0 of a two-member group is interested:
        // proportion 0.5.
        let interested = BitSet::from_members(3, [0]);
        let lenient = GridMatcher::new(&fw, &c).with_threshold(0.4);
        let strict = GridMatcher::new(&fw, &c).with_threshold(0.9);
        let p = Point::new(vec![2.0]);
        assert!(matches!(
            lenient.match_event(&p, &interested),
            Delivery::Multicast { .. }
        ));
        assert_eq!(strict.match_event(&p, &interested), Delivery::Unicast);
    }

    #[test]
    #[should_panic(expected = "proportion")]
    fn invalid_threshold_panics() {
        let (fw, c) = setup();
        let _ = GridMatcher::new(&fw, &c).with_threshold(1.5);
    }
}
