//! Batched cell-bucketed dispatch kernels.
//!
//! The per-event paths ([`DispatchPlan::serve`],
//! [`DispatchPlan::dispatch`]) re-resolve the event cell's candidate
//! list — and, on the serve path, chase one boxed `Rect` per candidate
//! — for every single event. Real event streams are heavily skewed
//! (hot cells receive most publications), so a batch of events lands on
//! far fewer distinct kept cells than it has events. The batched
//! kernels exploit that:
//!
//! 1. **SoA cell pass** — one sweep per grid dimension over a
//!    contiguous coordinate array, accumulating each event's row-major
//!    cell index with the plan's precompiled `lo/width/stride` (the
//!    same float expressions as [`DispatchPlan`]'s `locate`, hence
//!    bit-identical cells);
//! 2. **bucketing** — on the serve path, batch-local event positions
//!    are sorted by kept hyper-cell slot (off-grid and truncated cells
//!    share the `NO_SLOT` bucket), so each distinct slot is resolved
//!    once per batch; the dispatch path keeps arrival order — its
//!    per-event packed interested sets dwarf the point data, and
//!    streaming them sequentially beats regrouping — so only adjacent
//!    equal slots share a bucket there;
//! 3. **per-bucket resolve** — the bucket's candidate block is looked
//!    up once in the plan's *precompiled* flat bound arrays
//!    (dimension-major `f64` bounds and group-membership flags, built
//!    by `with_subscriptions`); every event in the bucket then scans
//!    contiguous memory instead of dereferencing one `Rect` per
//!    candidate;
//! 4. **scatter** — each decision is written back at the event's
//!    original batch position.
//!
//! Bucketing is therefore a pure permutation of per-event work with
//! per-event outputs: deliveries (and the serve path's interested
//! sets) are bit-identical to the scalar paths at any batch size, any
//! bucket order and any `PUBSUB_THREADS`, which keeps every downstream
//! fixed-chunk `f64` reduction — `sim`'s `DeliveryBreakdown` in
//! particular — bit-identical too (pinned by the `batch_equivalence`
//! suite). See DESIGN.md §13.

use std::ops::Range;
use std::sync::OnceLock;

use geometry::Point;

use crate::dispatch::{CellTable, DispatchPlan, NO_SLOT};
use crate::matching::Delivery;
use crate::membership::BitSet;

/// Cell-pass sentinel: the event is outside the grid on some dimension.
const OFF_GRID: usize = usize::MAX;

/// Default for `PUBSUB_BATCH_BUCKET_MIN`.
const DEFAULT_BATCH_BUCKET_MIN: usize = 16;

/// Smallest batch for which the serve path's bucketing sort pays for
/// itself; shorter batches keep arrival order (runs of equal adjacent
/// slots still share a bucket). Purely a performance knob — the scatter
/// step makes the output independent of bucket order, so results are
/// bit-identical either way. Override with `PUBSUB_BATCH_BUCKET_MIN`.
fn batch_bucket_min() -> usize {
    static MIN: OnceLock<usize> = OnceLock::new();
    *MIN.get_or_init(|| {
        crate::env_knob("PUBSUB_BATCH_BUCKET_MIN", DEFAULT_BATCH_BUCKET_MIN, |s| {
            s.parse().ok()
        })
    })
}

/// Reusable buffers for the batched kernels ([`DispatchPlan::serve_batch`],
/// [`DispatchPlan::dispatch_batch`]). Buffers grow to the high-water
/// mark during warm-up and are then reused, so steady-state batches
/// perform zero heap allocations (pinned by `dispatch_alloc`).
#[derive(Debug, Default)]
pub struct BatchScratch {
    /// Row-major grid cell per batch-local event (`OFF_GRID` if outside).
    cells: Vec<usize>,
    /// One dimension's coordinates, gathered per SoA sweep.
    xs: Vec<f64>,
    /// Kept hyper-cell slot per batch-local event (`NO_SLOT` if none).
    slots: Vec<u32>,
    /// Batch-local event positions, grouped by slot.
    order: Vec<u32>,
    /// The current event's coordinates (serve path).
    pt: Vec<f64>,
    /// Interested subscriber ids of all batch events, concatenated …
    interested: Vec<u32>,
    /// … delimited per batch-local event by `ranges[l]`.
    ranges: Vec<(u32, u32)>,
    /// R-tree fallback buffer for `NO_SLOT` events.
    tmp: Vec<usize>,
}

impl BatchScratch {
    /// Creates empty scratch buffers.
    pub fn new() -> Self {
        BatchScratch::default()
    }

    /// The interested subscription ids computed by the last
    /// [`DispatchPlan::serve_batch`] call for the batch-local event
    /// `local`, in increasing order (the same ids
    /// [`DispatchScratch::interested`](crate::DispatchScratch::interested)
    /// would hold after a scalar `serve` of that event).
    ///
    /// # Panics
    ///
    /// Panics if `local` is outside the last served batch.
    pub fn interested_of(&self, local: usize) -> impl Iterator<Item = usize> + '_ {
        let (start, end) = self.ranges[local];
        self.interested[start as usize..end as usize]
            .iter()
            .map(|&id| id as usize)
    }
}

impl DispatchPlan {
    // lint: hot-path
    /// The shared SoA cell pass + bucketing: fills `scratch.slots`
    /// (kept slot or [`NO_SLOT`] per batch-local event, from the same
    /// float expressions as the scalar `locate`) and `scratch.order`
    /// (event positions grouped by slot).
    ///
    /// `sort` groups *all* equal slots together (the serve path, whose
    /// per-event input is one point, so reordering is free and maximizes
    /// candidate-block reuse); without it only adjacent equal slots
    /// share a bucket (the dispatch path, whose per-event input is a
    /// packed `BitSet` indexed by event — arrival order keeps those
    /// large reads sequential). The scatter step makes the output
    /// independent of the choice.
    fn bucket_batch<'a>(
        &self,
        range: Range<usize>,
        point_of: &impl Fn(usize) -> &'a Point,
        scratch: &mut BatchScratch,
        sort: bool,
    ) {
        let b = range.len();
        let dim = self.dims.len();
        scratch.cells.clear();
        scratch.cells.resize(b, 0);
        for (d, pd) in self.dims.iter().enumerate() {
            scratch.xs.clear();
            for e in range.start..range.end {
                let p = point_of(e);
                if d == 0 {
                    assert_eq!(p.dim(), dim, "dimension mismatch");
                }
                scratch.xs.push(p[d]);
            }
            for (cell, &x) in scratch.cells.iter_mut().zip(&scratch.xs) {
                if *cell == OFF_GRID {
                    continue;
                }
                // `Interval::contains` (lo < x <= hi) and the bin
                // expression of the scalar `locate`, verbatim.
                if pd.lo < x && x <= pd.hi {
                    let t = (x - pd.lo) / pd.width;
                    let i = (t.ceil() as isize - 1).clamp(0, pd.bins - 1) as usize;
                    *cell += i * pd.stride;
                } else {
                    *cell = OFF_GRID;
                }
            }
        }
        scratch.slots.clear();
        match &self.table {
            CellTable::Dense(t) => {
                for &c in &scratch.cells {
                    scratch
                        .slots
                        .push(if c == OFF_GRID { NO_SLOT } else { t[c] });
                }
            }
            CellTable::Sparse(m) => {
                for &c in &scratch.cells {
                    scratch.slots.push(if c == OFF_GRID {
                        NO_SLOT
                    } else {
                        m.get(&c).copied().unwrap_or(NO_SLOT)
                    });
                }
            }
        }
        scratch.order.clear();
        scratch.order.extend(0..b as u32);
        if sort && b >= batch_bucket_min() {
            let slots = &scratch.slots;
            scratch.order.sort_unstable_by_key(|&l| slots[l as usize]);
        }
    }

    /// Batched [`serve`](Self::serve) over an index range: appends one
    /// [`Delivery`] per index onto `out` (not cleared), *in index
    /// order*, and records each event's exact interested set (readable
    /// through [`BatchScratch::interested_of`]). Decisions and
    /// interested sets are bit-identical to calling `serve` per event;
    /// internally events are bucketed by kept cell and scan the plan's
    /// precompiled flat candidate bounds, resolved once per bucket.
    ///
    /// # Panics
    ///
    /// Panics if the plan was compiled without
    /// [`with_subscriptions`](Self::with_subscriptions), or on
    /// dimension mismatch.
    pub fn serve_batch<'a>(
        &self,
        range: Range<usize>,
        point_of: impl Fn(usize) -> &'a Point,
        scratch: &mut BatchScratch,
        out: &mut Vec<Delivery>,
    ) {
        let state = self
            .serve_state
            .as_ref()
            .expect("DispatchPlan::serve_batch requires with_subscriptions");
        let b = range.len();
        let dim = self.dims.len();
        let base = out.len();
        let start_event = range.start;
        out.resize(base + b, Delivery::Unicast);
        self.bucket_batch(range, &point_of, scratch, true);
        let BatchScratch {
            slots,
            order,
            pt,
            interested,
            ranges,
            tmp,
            ..
        } = scratch;
        interested.clear();
        ranges.clear();
        ranges.resize(b, (0, 0));
        let mut at = 0usize;
        while at < b {
            let slot = slots[order[at] as usize];
            let mut end = at + 1;
            while end < b && slots[order[end] as usize] == slot {
                end += 1;
            }
            if slot == NO_SLOT {
                // Not kept: full-index fallback and unicast, exactly as
                // the scalar serve path.
                for &l in &order[at..end] {
                    let p = point_of(start_event + l as usize);
                    state.index.matching_into(p, tmp);
                    let start = interested.len() as u32;
                    interested.extend(tmp.iter().map(|&i| i as u32));
                    ranges[l as usize] = (start, interested.len() as u32);
                    // `out[base + l]` stays `Unicast`.
                }
            } else {
                let sl = slot as usize;
                let o = self.hyper_offsets[sl] as usize;
                let members = &self.hyper_members[o..self.hyper_offsets[sl + 1] as usize];
                let nc = members.len();
                let group = self.hyper_group[sl] as usize;
                let group_empty = self.group_size[group] == 0;
                // The bucket's candidate block in the plan's precompiled
                // flat bound arrays (built once by `with_subscriptions`
                // from the same `Rect` floats): every event in the
                // bucket scans contiguous memory, no gather at all.
                let cand_lo = &state.cand_lo[o * dim..(o + nc) * dim];
                let cand_hi = &state.cand_hi[o * dim..(o + nc) * dim];
                let cand_in_group = &state.cand_in_group[o..o + nc];
                for &l in &order[at..end] {
                    let p = point_of(start_event + l as usize);
                    pt.clear();
                    for d in 0..dim {
                        pt.push(p[d]);
                    }
                    let start = interested.len() as u32;
                    let mut hits = 0usize;
                    for (k, &id) in members.iter().enumerate() {
                        let mut inside = true;
                        for (d, &x) in pt.iter().enumerate() {
                            // `Interval::contains`: lo < x <= hi, over
                            // the same floats as `Rect::contains`.
                            inside &= cand_lo[d * nc + k] < x && x <= cand_hi[d * nc + k];
                        }
                        if inside {
                            interested.push(id);
                            hits += usize::from(cand_in_group[k]);
                        }
                    }
                    ranges[l as usize] = (start, interested.len() as u32);
                    out[base + l as usize] = if group_empty {
                        Delivery::Unicast
                    } else {
                        self.decide(slot, hits)
                    };
                }
            }
            at = end;
        }
    }

    /// Batched [`dispatch`](Self::dispatch) over an index range with
    /// caller-computed interested sets: appends one [`Delivery`] per
    /// index onto `out` (not cleared), *in index order*, bit-identical
    /// to [`dispatch_chunk`](Self::dispatch_chunk). Adjacent events in
    /// the same kept cell share a bucket that resolves its group, size
    /// and hit strategy once; arrival order is kept (no bucket sort) so
    /// the per-event packed interested sets stream sequentially.
    ///
    /// # Panics
    ///
    /// Panics if any interested set's universe differs from the
    /// framework's subscription count, or on dimension mismatch.
    pub fn dispatch_batch<'a>(
        &self,
        range: Range<usize>,
        point_of: impl Fn(usize) -> &'a Point,
        interested_of: impl Fn(usize) -> &'a BitSet,
        scratch: &mut BatchScratch,
        out: &mut Vec<Delivery>,
    ) {
        let b = range.len();
        let base = out.len();
        let start_event = range.start;
        out.resize(base + b, Delivery::Unicast);
        self.bucket_batch(range, &point_of, scratch, false);
        let BatchScratch { slots, order, .. } = scratch;
        let check = |e: usize| {
            assert_eq!(
                interested_of(e).universe(),
                self.num_subscribers,
                "universe mismatch"
            );
        };
        let mut at = 0usize;
        while at < b {
            let slot = slots[order[at] as usize];
            let mut end = at + 1;
            while end < b && slots[order[end] as usize] == slot {
                end += 1;
            }
            if slot == NO_SLOT {
                for &l in &order[at..end] {
                    check(start_event + l as usize);
                    // `out[base + l]` stays `Unicast`.
                }
            } else {
                let group = self.hyper_group[slot as usize] as usize;
                let size = self.group_size[group] as usize;
                if size == 0 {
                    for &l in &order[at..end] {
                        check(start_event + l as usize);
                    }
                } else if size <= self.words {
                    // Sparse group: walk the member list per event (the
                    // scalar strategy for this size), list resolved once.
                    let gmembers = &self.group_members[self.group_offsets[group] as usize
                        ..self.group_offsets[group + 1] as usize];
                    for &l in &order[at..end] {
                        let e = start_event + l as usize;
                        check(e);
                        let set = interested_of(e);
                        let hits = gmembers
                            .iter()
                            .filter(|&&i| set.contains(i as usize))
                            .count();
                        out[base + l as usize] = self.decide(slot, hits);
                    }
                } else {
                    // Dense group: blocked popcount against the packed
                    // words, row resolved once per bucket.
                    let gwords = &self.group_words[group * self.words..(group + 1) * self.words];
                    for &l in &order[at..end] {
                        let e = start_event + l as usize;
                        check(e);
                        let hits =
                            crate::membership::and_popcount_words(gwords, interested_of(e).words());
                        out[base + l as usize] = self.decide(slot, hits);
                    }
                }
            }
            at = end;
        }
    }
    // lint: hot-path end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{CellProbability, GridFramework};
    use crate::kmeans::{KMeans, KMeansVariant};
    use crate::{ClusteringAlgorithm, DispatchScratch};
    use geometry::{Grid, Interval, Rect};
    use rand::prelude::*;

    fn scenario(seed: u64) -> (Vec<Rect>, Vec<Point>, DispatchPlan) {
        let mut rng = StdRng::seed_from_u64(seed);
        let subs: Vec<Rect> = (0..150)
            .map(|_| {
                let lo = rng.gen_range(0.0..9.0);
                let hi = lo + rng.gen_range(0.1..4.0);
                Rect::new(vec![Interval::new(lo, hi.min(10.0)).unwrap()])
            })
            .collect();
        let points: Vec<Point> = (0..700)
            .map(|_| Point::new(vec![rng.gen_range(-1.0..11.0)]))
            .collect();
        let grid = Grid::cube(0.0, 10.0, 1, 50).unwrap();
        let probs = CellProbability::uniform(&grid);
        let fw = GridFramework::build(grid, &subs, &probs, Some(30));
        let c = KMeans::new(KMeansVariant::MacQueen).cluster(&fw, 6);
        let plan = DispatchPlan::compile(&fw, &c)
            .with_threshold(0.2)
            .with_subscriptions(&subs);
        (subs, points, plan)
    }

    #[test]
    fn serve_batch_matches_scalar_serve_at_any_batch_size() {
        let (_, points, plan) = scenario(17);
        let mut scalar = DispatchScratch::new();
        let reference: Vec<(Delivery, Vec<usize>)> = points
            .iter()
            .map(|p| {
                let d = plan.serve(p, &mut scalar);
                (d, scalar.interested().to_vec())
            })
            .collect();
        // Batch sizes below and above the bucket-sort threshold.
        for batch in [1usize, 3, 16, 97, points.len()] {
            let mut scratch = BatchScratch::new();
            let mut out = Vec::new();
            let mut start = 0;
            while start < points.len() {
                let end = (start + batch).min(points.len());
                let before = out.len();
                plan.serve_batch(start..end, |e| &points[e], &mut scratch, &mut out);
                for local in 0..(end - start) {
                    let (_, ref ids) = reference[start + local];
                    assert_eq!(
                        scratch.interested_of(local).collect::<Vec<_>>(),
                        *ids,
                        "interested set, batch {batch}, event {}",
                        start + local
                    );
                    assert_eq!(out[before + local], reference[start + local].0);
                }
                start = end;
            }
            assert_eq!(out.len(), points.len());
        }
    }

    #[test]
    fn dispatch_batch_matches_dispatch_chunk() {
        let (subs, points, plan) = scenario(18);
        let sets: Vec<BitSet> = points
            .iter()
            .map(|p| {
                BitSet::from_members(
                    subs.len(),
                    subs.iter()
                        .enumerate()
                        .filter(|(_, r)| r.contains(p))
                        .map(|(i, _)| i),
                )
            })
            .collect();
        let mut reference = Vec::new();
        plan.dispatch_chunk(
            0..points.len(),
            |e| &points[e],
            |e| &sets[e],
            &mut reference,
        );
        for batch in [5usize, 64, points.len()] {
            let mut scratch = BatchScratch::new();
            let mut out = Vec::new();
            let mut start = 0;
            while start < points.len() {
                let end = (start + batch).min(points.len());
                plan.dispatch_batch(
                    start..end,
                    |e| &points[e],
                    |e| &sets[e],
                    &mut scratch,
                    &mut out,
                );
                start = end;
            }
            assert_eq!(out, reference, "batch {batch}");
        }
    }

    #[test]
    #[should_panic(expected = "with_subscriptions")]
    fn serve_batch_without_subscriptions_panics() {
        let (subs, points, _) = scenario(19);
        let grid = Grid::cube(0.0, 10.0, 1, 50).unwrap();
        let probs = CellProbability::uniform(&grid);
        let fw = GridFramework::build(grid, &subs, &probs, None);
        let c = KMeans::new(KMeansVariant::MacQueen).cluster(&fw, 4);
        let plan = DispatchPlan::compile(&fw, &c);
        let mut scratch = BatchScratch::new();
        let mut out = Vec::new();
        plan.serve_batch(0..points.len(), |e| &points[e], &mut scratch, &mut out);
    }
}
