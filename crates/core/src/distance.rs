//! Shared lower-triangular cache of pairwise expected-waste distances.
//!
//! Every grid-based algorithm starts from the same `l × l` singleton
//! distance structure: Pairwise Grouping's nearest-neighbour
//! initialization, MST clustering's edge generation, K-means seeding, and
//! outlier removal all evaluate `d(a, b)` over pairs of *hyper-cells*
//! (not yet merged groups). [`DistanceMatrix`] computes those `l(l−1)/2`
//! values once — filled in parallel, row-chunked — and every consumer
//! reads them back instead of re-walking two membership bit-vectors per
//! query.
//!
//! Each stored value is produced by the very same
//! [`expected_waste`](crate::expected_waste) call the algorithms would
//! otherwise make, so cached and uncached runs are bit-for-bit identical;
//! the cache is only valid for *singleton* pairs, and algorithms fall
//! back to direct computation for merged groups (whose membership vectors
//! differ from any hyper-cell's).

use std::sync::OnceLock;

use crate::compressed::CompressedSet;
use crate::framework::HyperCell;
use crate::parallel;
use crate::waste::{expected_waste, expected_waste_compressed_weighted};

/// Default for `PUBSUB_DM_BLOCK`.
const DEFAULT_DM_BLOCK: usize = 32;

/// Column-tile width (in hyper-cells) of the cache-blocked build and of
/// the incremental reassembly. Each tile's membership vectors are
/// walked by every row of an 8-row chunk while still cache-resident
/// (32 vectors × ~12.5 KB at 100k subscribers fits in L2). Purely a
/// performance knob — every entry is an independent
/// [`expected_waste`] value placed by index, never summed, so the tile
/// order cannot change any bit. Override with `PUBSUB_DM_BLOCK`
/// (clamped to ≥ 1).
pub(crate) fn dm_block() -> usize {
    static BLOCK: OnceLock<usize> = OnceLock::new();
    *BLOCK.get_or_init(|| {
        crate::env_knob("PUBSUB_DM_BLOCK", DEFAULT_DM_BLOCK, |s| s.parse().ok()).max(1)
    })
}

/// Packed lower-triangular matrix of `d(i, j)` over hyper-cell indices.
pub struct DistanceMatrix {
    pub(crate) n: usize,
    /// Row-major lower triangle: row `i` holds `d(i, 0) .. d(i, i-1)`
    /// starting at offset `i·(i−1)/2`.
    pub(crate) data: Vec<f64>,
}

impl DistanceMatrix {
    /// Computes all pairwise expected-waste distances between the given
    /// hyper-cells. Each entry is exactly
    /// `expected_waste(h[i].prob, &h[i].members, h[j].prob, &h[j].members)`.
    ///
    /// The triangle is filled in parallel 8-row chunks, each chunk
    /// cache-blocked into `PUBSUB_DM_BLOCK`-column tiles: the tile's column
    /// memberships are re-walked by every row of the chunk while still
    /// hot, instead of streaming the full row past a cold cache. Every
    /// entry is placed at its own index (no reduction), so the traversal
    /// order is bit-irrelevant.
    pub fn build(hypercells: &[HyperCell]) -> Self {
        Self::build_weighted(hypercells, None)
    }

    /// [`DistanceMatrix::build`] with optional per-subscriber weights:
    /// each entry becomes the *weighted* expected waste, where member
    /// `i` of an exclusive set counts `weights[i]` deliveries. With
    /// `None` this is exactly the unweighted build. The aggregation
    /// layer passes class weights here so class-level matrices equal
    /// the concrete matrices bit-for-bit.
    ///
    /// The weighted arm streams adaptive compressed mirrors of the
    /// membership vectors ([`CompressedSet`]) instead of the dense
    /// words: class universes at scale are wide but each hyper-cell is
    /// sparse, so the array representation walks members instead of
    /// mostly-zero words. The mirrors count exactly the dense integers,
    /// so the entries are bit-identical either way.
    pub(crate) fn build_weighted(hypercells: &[HyperCell], weights: Option<&[u64]>) -> Self {
        if let Some(w) = weights {
            let mirrors: Vec<CompressedSet> =
                parallel::par_map(hypercells, 8, |hc| CompressedSet::from_bitset(&hc.members));
            let refs: Vec<&CompressedSet> = mirrors.iter().collect();
            return Self::build_weighted_from_mirrors(hypercells, &refs, w);
        }
        let n = hypercells.len();
        let block = dm_block();
        let chunks = parallel::par_chunks(n, 8, |rows| {
            let mut out: Vec<Vec<f64>> = rows.clone().map(|i| vec![0.0f64; i]).collect();
            let cols = rows.end.saturating_sub(1);
            let mut j0 = 0usize;
            while j0 < cols {
                let j1 = (j0 + block).min(cols);
                for (r, i) in rows.clone().enumerate() {
                    let a = &hypercells[i];
                    let row = &mut out[r];
                    for j in j0..j1.min(i) {
                        let b = &hypercells[j];
                        row[j] = expected_waste(a.prob, &a.members, b.prob, &b.members);
                    }
                }
                j0 = j1;
            }
            out
        });
        let mut data = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for rows in chunks {
            for row in rows {
                data.extend_from_slice(&row);
            }
        }
        DistanceMatrix { n, data }
    }

    /// The weighted build over caller-supplied compressed mirrors
    /// (`mirrors[i]` holding exactly `hypercells[i].members`). The
    /// weighted framework path hands in the membership pool's interned
    /// mirrors so nothing is re-compressed per rebuild; the fill keeps
    /// the same 8-row chunks × [`dm_block`]-column tiling as the dense
    /// build, and every entry is placed by index, so the result is
    /// bit-identical at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `mirrors` and `hypercells` differ in length.
    pub(crate) fn build_weighted_from_mirrors(
        hypercells: &[HyperCell],
        mirrors: &[&CompressedSet],
        weights: &[u64],
    ) -> Self {
        assert_eq!(
            hypercells.len(),
            mirrors.len(),
            "one compressed mirror per hyper-cell"
        );
        let n = hypercells.len();
        let block = dm_block();
        let chunks = parallel::par_chunks(n, 8, |rows| {
            let mut out: Vec<Vec<f64>> = rows.clone().map(|i| vec![0.0f64; i]).collect();
            let cols = rows.end.saturating_sub(1);
            let mut j0 = 0usize;
            while j0 < cols {
                let j1 = (j0 + block).min(cols);
                for (r, i) in rows.clone().enumerate() {
                    let (pa, ma) = (hypercells[i].prob, mirrors[i]);
                    let row = &mut out[r];
                    for j in j0..j1.min(i) {
                        row[j] = expected_waste_compressed_weighted(
                            pa,
                            ma,
                            hypercells[j].prob,
                            mirrors[j],
                            weights,
                        );
                    }
                }
                j0 = j1;
            }
            out
        });
        let mut data = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for rows in chunks {
            for row in rows {
                data.extend_from_slice(&row);
            }
        }
        DistanceMatrix { n, data }
    }

    /// Assembles a matrix from already-computed lower-triangle rows
    /// (row `i` holding `d(i, 0) .. d(i, i-1)`). Used by the
    /// incremental pipeline, which fills rows by reusing entries of the
    /// previous matrix where both hyper-cells are unchanged.
    ///
    /// # Panics
    ///
    /// Panics if row `i` does not have exactly `i` entries.
    pub(crate) fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        let n = rows.len();
        let mut data = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), i, "row {i} must hold {i} entries");
            data.extend_from_slice(row);
        }
        DistanceMatrix { n, data }
    }

    /// Number of hyper-cells the matrix covers.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix covers no hyper-cells.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The cached `d(i, j)`; `d(i, i)` is 0.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds, via slice indexing in release) if an
    /// index is out of range.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        let (hi, lo) = if i > j { (i, j) } else { (j, i) };
        self.data[hi * (hi - 1) / 2 + lo]
    }

    /// Approximate heap footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }
}

impl std::fmt::Debug for DistanceMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistanceMatrix")
            .field("n", &self.n)
            .field("entries", &self.data.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::BitSet;

    fn cells() -> Vec<HyperCell> {
        let sets: [&[usize]; 5] = [&[0, 1], &[1, 2, 3], &[0, 4], &[2], &[0, 1, 2, 3, 4]];
        sets.iter()
            .enumerate()
            .map(|(i, s)| HyperCell {
                cells: vec![],
                members: BitSet::from_members(6, s.iter().copied()),
                prob: 0.1 + 0.05 * i as f64,
            })
            .collect()
    }

    #[test]
    fn matches_direct_expected_waste() {
        let h = cells();
        let m = DistanceMatrix::build(&h);
        assert_eq!(m.len(), 5);
        for i in 0..5 {
            for j in 0..5 {
                let direct = expected_waste(h[i].prob, &h[i].members, h[j].prob, &h[j].members);
                assert_eq!(m.get(i, j).to_bits(), direct.to_bits(), "({i},{j})");
                assert_eq!(m.get(i, j).to_bits(), m.get(j, i).to_bits());
            }
        }
    }

    #[test]
    fn identical_across_thread_counts() {
        let h = cells();
        let serial = parallel::with_threads(1, || DistanceMatrix::build(&h));
        let par = parallel::with_threads(8, || DistanceMatrix::build(&h));
        assert_eq!(serial.data.len(), par.data.len());
        for (a, b) in serial.data.iter().zip(&par.data) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn weighted_build_streams_compressed_but_matches_dense_kernel() {
        use crate::waste::expected_waste_weighted;
        // Mix sparse (array-mirrored) and dense (bitmap-mirrored)
        // hyper-cells over a universe large enough to exercise both
        // representations, plus weights big enough to matter.
        let universe = 4096;
        let sets: Vec<BitSet> = vec![
            BitSet::from_members(universe, (0..universe).step_by(311)),
            BitSet::from_members(universe, (0..universe).filter(|i| i % 2 == 0)),
            BitSet::from_members(universe, (7..universe).step_by(97)),
            BitSet::from_members(universe, (0..universe).filter(|i| i % 3 != 1)),
            BitSet::new(universe),
        ];
        let h: Vec<HyperCell> = sets
            .into_iter()
            .enumerate()
            .map(|(i, members)| HyperCell {
                cells: vec![],
                members,
                prob: 0.05 + 0.07 * i as f64,
            })
            .collect();
        let weights: Vec<u64> = (0..universe as u64).map(|i| (i % 11) + 1).collect();
        for threads in [1, 8] {
            let m = parallel::with_threads(threads, || {
                DistanceMatrix::build_weighted(&h, Some(&weights))
            });
            for i in 0..h.len() {
                for j in 0..h.len() {
                    let direct = expected_waste_weighted(
                        h[i].prob,
                        &h[i].members,
                        h[j].prob,
                        &h[j].members,
                        &weights,
                    );
                    assert_eq!(
                        m.get(i, j).to_bits(),
                        direct.to_bits(),
                        "({i},{j}) threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn from_rows_round_trips_build() {
        let h = cells();
        let built = DistanceMatrix::build(&h);
        let rows: Vec<Vec<f64>> = (0..h.len())
            .map(|i| (0..i).map(|j| built.get(i, j)).collect())
            .collect();
        let assembled = DistanceMatrix::from_rows(rows);
        assert_eq!(assembled.len(), built.len());
        for i in 0..h.len() {
            for j in 0..h.len() {
                assert_eq!(assembled.get(i, j).to_bits(), built.get(i, j).to_bits());
            }
        }
    }

    #[test]
    fn empty_and_singleton() {
        let m = DistanceMatrix::build(&[]);
        assert!(m.is_empty());
        let h = cells();
        let m = DistanceMatrix::build(&h[..1]);
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(0, 0), 0.0);
    }
}
