//! The always-on broker service loop: concurrent ingest over an
//! atomically hot-swapped [`DispatchPlan`], with bounded queues,
//! explicit overload shedding, and a watchdog-guarded background
//! rebalancer (DESIGN.md §14).
//!
//! Everything before this module is batch: build framework → cluster →
//! compile plan → replay events. [`BrokerService`] turns the same
//! pipeline into a long-running loop:
//!
//! * **N ingest threads** pop events from a bounded queue and serve
//!   them with [`DispatchPlan::serve`] against an epoch-cached
//!   [`SnapshotCell`](crate::SnapshotCell) snapshot — one atomic load
//!   per event in steady state, no lock on the serve path;
//! * a **rebalancer thread** consumes churn ops, folds them into a
//!   *clone* of the [`DynamicClustering`], runs the incremental
//!   pipeline ([`DynamicClustering::try_rebalance`]), compiles the
//!   next plan and publishes it **only after** the structural
//!   [`Validator`] passes. A failed, panicking, or timed-out attempt
//!   rolls back to the last good state (the clone is simply dropped)
//!   and surfaces a [`RebalanceAbort`] — the serve path is never
//!   poisoned;
//! * **backpressure is explicit**: the ingest queue holds at most
//!   `queue_depth` events (`PUBSUB_SERVICE_QUEUE_DEPTH`) and overload
//!   follows the configured [`ShedPolicy`] (`PUBSUB_SERVICE_SHED`).
//!   Every shed event is counted with its id, so
//!   `delivered + shed == offered` exactly partitions the offered load
//!   — nothing is ever dropped on the floor silently;
//! * repeated rebalance failures back off exponentially
//!   (shift-capped, mirroring the PR 2 retry machinery) and the
//!   watchdog timeout can be retuned live
//!   ([`BrokerService::set_rebalance_timeout`]).
//!
//! Determinism: an event's decision depends only on `(event, plan
//! snapshot)`, and each published snapshot is a pure function of the
//! op stream. Drivers that quiesce between phases
//! ([`BrokerService::drain`] + the synchronous
//! [`BrokerService::rebalance`]) therefore get decisions bit-identical
//! to a serial replay at any ingest thread count — pinned by the
//! swap-storm suite in `crates/core/tests/service.rs`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use geometry::{Interval, Point, Rect};

use crate::dispatch::{DispatchPlan, DispatchScratch};
use crate::dynamic::{DynamicClustering, RebalanceError, RebalanceStats, SubscriptionId};
use crate::knob::env_knob;
use crate::matching::Delivery;
use crate::snapshot::SnapshotCell;
use crate::validate::Validator;

/// Exponent cap of the abort backoff: after this many consecutive
/// failures the delay stops doubling (`base << SHIFT_CAP` at most), so
/// arithmetic can never overflow and the rebalancer never sleeps
/// unboundedly long.
const BACKOFF_SHIFT_CAP: u32 = 6;

/// What [`BrokerService::offer`] does when the ingest queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Block the offering thread until a slot frees up — lossless
    /// backpressure, latency absorbed by the publisher.
    Block,
    /// Shed the incoming event (classic tail drop).
    DropNewest,
    /// Shed the oldest queued event to admit the new one (the queue
    /// always holds the freshest window).
    DropOldest,
}

impl ShedPolicy {
    /// Parses the `PUBSUB_SERVICE_SHED` spelling.
    fn parse(s: &str) -> Option<ShedPolicy> {
        match s {
            "block" => Some(ShedPolicy::Block),
            "drop-newest" => Some(ShedPolicy::DropNewest),
            "drop-oldest" => Some(ShedPolicy::DropOldest),
            _ => None,
        }
    }

    /// The canonical knob spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            ShedPolicy::Block => "block",
            ShedPolicy::DropNewest => "drop-newest",
            ShedPolicy::DropOldest => "drop-oldest",
        }
    }
}

impl std::fmt::Display for ShedPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Configuration of a [`BrokerService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Ingest worker threads (at least 1).
    pub ingest_threads: usize,
    /// Bounded ingest-queue capacity (at least 1).
    pub queue_depth: usize,
    /// Overload behavior when the queue is full.
    pub shed: ShedPolicy,
    /// Multicast threshold compiled into every published plan.
    pub threshold: f64,
    /// Watchdog deadline for one rebalance attempt (checked between
    /// pipeline stages); `None` disables the watchdog.
    pub rebalance_timeout: Option<Duration>,
    /// Base delay of the exponential abort backoff (doubled per
    /// consecutive failure, shift-capped at 2^6; `ZERO` disables).
    pub retry_backoff: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            ingest_threads: crate::parallel::num_threads(),
            queue_depth: 1024,
            shed: ShedPolicy::Block,
            threshold: 0.0,
            rebalance_timeout: Some(Duration::from_millis(5_000)),
            retry_backoff: Duration::from_millis(10),
        }
    }
}

impl ServiceConfig {
    /// Defaults overridden by the environment knobs
    /// `PUBSUB_SERVICE_QUEUE_DEPTH` (≥ 1),
    /// `PUBSUB_SERVICE_SHED` (`block` | `drop-newest` | `drop-oldest`)
    /// and `PUBSUB_SERVICE_REBALANCE_TIMEOUT_MS` (`0` disables the
    /// watchdog). Malformed values keep the defaults with a one-time
    /// stderr report ([`env_knob`]).
    pub fn from_env() -> Self {
        let d = ServiceConfig::default();
        let timeout_ms = env_knob("PUBSUB_SERVICE_REBALANCE_TIMEOUT_MS", 5_000u64, |s| {
            s.parse().ok()
        });
        ServiceConfig {
            queue_depth: env_knob("PUBSUB_SERVICE_QUEUE_DEPTH", d.queue_depth, |s| {
                s.parse().ok().filter(|&n| n > 0)
            }),
            shed: env_knob("PUBSUB_SERVICE_SHED", d.shed, ShedPolicy::parse),
            rebalance_timeout: (timeout_ms > 0).then(|| Duration::from_millis(timeout_ms)),
            ..d
        }
    }
}

/// A churn operation queued for the next rebalance.
#[derive(Debug, Clone)]
enum ServiceOp {
    Subscribe { id: SubscriptionId, rect: Rect },
    Unsubscribe { id: SubscriptionId },
    Resubscribe { id: SubscriptionId, rect: Rect },
}

/// An immutable published plan: the snapshot unit of the hot swap.
#[derive(Debug)]
struct VersionedPlan {
    /// Publication epoch of this plan (0 = the plan the service
    /// started with; equals the [`SnapshotCell`] epoch it was
    /// published under).
    version: u64,
    plan: DispatchPlan,
}

/// One decided event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRecord {
    /// The id [`BrokerService::offer`] returned.
    pub id: u64,
    /// Version of the (validated, published) plan that decided it.
    pub plan_version: u64,
    /// The delivery decision.
    pub decision: Delivery,
    /// Exact interested subscribers computed by the serve path.
    pub interested: u32,
    /// offer → decision latency in nanoseconds (includes queue wait).
    pub latency_ns: u64,
}

/// Why a rebalance attempt was aborted. The previous plan keeps
/// serving in every case.
#[derive(Debug, Clone)]
pub enum RebalanceAbort {
    /// The watchdog deadline passed; `stage` names the last completed
    /// pipeline stage (`churn`, `rebalance`, `compile`, `validate`).
    TimedOut {
        /// Last pipeline stage that completed before the deadline.
        stage: &'static str,
    },
    /// The maintenance pipeline itself failed (panic or structural
    /// audit violation) and rolled back.
    Rejected(RebalanceError),
    /// The compiled plan failed the dispatch-plan audit.
    PlanRejected(String),
}

impl std::fmt::Display for RebalanceAbort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RebalanceAbort::TimedOut { stage } => {
                write!(f, "rebalance watchdog fired after stage `{stage}`")
            }
            RebalanceAbort::Rejected(e) => write!(f, "rebalance rejected: {e}"),
            RebalanceAbort::PlanRejected(e) => write!(f, "compiled plan rejected: {e}"),
        }
    }
}

impl std::error::Error for RebalanceAbort {}

/// Outcome of one successful rebalance + hot swap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwapReport {
    /// Version of the newly published plan.
    pub version: u64,
    /// Diagnostics of the underlying [`DynamicClustering`] rebalance.
    pub stats: RebalanceStats,
    /// Churn ops skipped because their target id was unknown or
    /// already gone (e.g. raced a crash-forced unsubscribe).
    pub rejected_ops: usize,
    /// Live subscriptions after the swap.
    pub subscriptions: usize,
}

/// Final accounting of a service run ([`BrokerService::shutdown`]).
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Events offered (every id in `0..offered` was issued).
    pub offered: u64,
    /// Events decided by a published plan (`records.len()`).
    pub delivered: u64,
    /// Events shed by the overload policy (`shed_events.len()`).
    pub shed: u64,
    /// Plans published after validation (excluding the initial plan).
    pub swaps: u64,
    /// Rebalance attempts aborted (timeout, panic, audit).
    pub aborts: u64,
    /// Total churn ops skipped across all swaps.
    pub rejected_ops: u64,
    /// The shed policy in force.
    pub shed_policy: ShedPolicy,
    /// Every decision, sorted by event id.
    pub records: Vec<EventRecord>,
    /// Ids of shed events, sorted.
    pub shed_events: Vec<u64>,
    /// Versions published over the run, in order (starts with 0, the
    /// initial plan; all of them passed the validator before publish).
    pub published_versions: Vec<u64>,
}

impl ServiceReport {
    /// The load-partition invariant: every offered event is counted
    /// exactly once as delivered or shed, with matching id sets.
    pub fn partitions_offered(&self) -> bool {
        if self.delivered + self.shed != self.offered {
            return false;
        }
        if self.records.len() as u64 != self.delivered || self.shed_events.len() as u64 != self.shed
        {
            return false;
        }
        // Merge the two sorted id sequences; together they must be
        // exactly 0..offered.
        let mut ri = self.records.iter().map(|r| r.id).peekable();
        let mut si = self.shed_events.iter().copied().peekable();
        for expect in 0..self.offered {
            let took = match (ri.peek().copied(), si.peek().copied()) {
                (Some(a), _) if a == expect => ri.next(),
                (_, Some(b)) if b == expect => si.next(),
                _ => None,
            };
            if took != Some(expect) {
                return false;
            }
        }
        ri.next().is_none() && si.next().is_none()
    }
}

/// An event waiting in the ingest queue.
struct PendingEvent {
    id: u64,
    point: Point,
    enqueued: Instant,
}

struct QueueState {
    buf: VecDeque<PendingEvent>,
    in_flight: usize,
    paused: bool,
    closed: bool,
}

/// Bounded MPMC ingest queue (mutex + condvars; the serve path itself
/// never touches it while deciding an event).
struct IngestQueue {
    state: Mutex<QueueState>,
    /// Signalled when a slot frees up (block-policy producers wait).
    space: Condvar,
    /// Signalled when an event arrives or the queue closes/resumes.
    ready: Condvar,
    /// Signalled when the queue is empty with nothing in flight.
    idle: Condvar,
}

impl IngestQueue {
    fn new() -> Self {
        IngestQueue {
            state: Mutex::new(QueueState {
                buf: VecDeque::new(),
                in_flight: 0,
                paused: false,
                closed: false,
            }),
            space: Condvar::new(),
            ready: Condvar::new(),
            idle: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueState> {
        // A worker panic while holding the lock (impossible in the
        // current loop body, which only moves plain data) must not
        // wedge every other thread.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Shared state between the service handle, the ingest workers and the
/// rebalancer.
struct Shared {
    plan: SnapshotCell<VersionedPlan>,
    queue: IngestQueue,
    records: Mutex<Vec<EventRecord>>,
    shed_events: Mutex<Vec<u64>>,
    published: Mutex<Vec<u64>>,
    offered: AtomicU64,
    shed: AtomicU64,
    swaps: AtomicU64,
    aborts: AtomicU64,
    rejected_ops: AtomicU64,
}

/// Control messages consumed by the rebalancer thread.
enum ControlMsg {
    Ops(Vec<ServiceOp>),
    Rebalance(Sender<Result<SwapReport, RebalanceAbort>>),
    SetTimeout(Option<Duration>),
    Shutdown,
}

/// Serialized control-plane side of the handle: op submission order
/// must equal id pre-assignment order.
struct Control {
    tx: Sender<ControlMsg>,
    next_slot: usize,
}

/// The running broker service. See the module docs for the thread
/// layout; construct with [`BrokerService::start`], stop with
/// [`BrokerService::shutdown`].
pub struct BrokerService {
    shared: Arc<Shared>,
    control: Mutex<Control>,
    workers: Vec<JoinHandle<()>>,
    rebalancer: Option<JoinHandle<DynamicClustering>>,
    shed_policy: ShedPolicy,
    queue_depth: usize,
}

/// Id-aligned rectangles for [`DispatchPlan::with_subscriptions`]:
/// tombstoned slots become degenerate (point-empty) rectangles that
/// contain no event, so they can never match.
fn slot_rects(dynamic: &DynamicClustering) -> Vec<Rect> {
    let bounds = dynamic.framework().grid().bounds().clone();
    let empty = Rect::new(
        bounds
            .intervals()
            .iter()
            .map(|iv| Interval::new(iv.lo(), iv.lo()).expect("degenerate interval is valid"))
            .collect(),
    );
    dynamic
        .subscription_slots()
        .iter()
        .map(|slot| slot.clone().unwrap_or_else(|| empty.clone()))
        .collect()
}

/// Compiles and audits a plan for the given clustering state.
fn compile_plan(
    dynamic: &DynamicClustering,
    threshold: f64,
) -> Result<DispatchPlan, RebalanceAbort> {
    let rects = slot_rects(dynamic);
    let plan = DispatchPlan::compile(dynamic.framework(), dynamic.clustering())
        .with_threshold(threshold)
        .with_subscriptions(&rects);
    let mut v = Validator::new();
    v.check_dispatch_plan(dynamic.framework(), dynamic.clustering(), &plan);
    match v.finish() {
        Ok(()) => Ok(plan),
        Err(e) => Err(RebalanceAbort::PlanRejected(e.to_string())),
    }
}

/// State owned by the rebalancer thread.
struct Rebalancer {
    dynamic: DynamicClustering,
    pending: Vec<ServiceOp>,
    threshold: f64,
    timeout: Option<Duration>,
    backoff_base: Duration,
    consecutive_failures: u32,
    shared: Arc<Shared>,
}

/// Shift-capped exponential backoff: `base << min(failures - 1, CAP)`,
/// saturating, `ZERO` when there is no failure streak or no base.
fn backoff_delay(base: Duration, consecutive_failures: u32) -> Duration {
    if consecutive_failures == 0 || base.is_zero() {
        return Duration::ZERO;
    }
    let shift = (consecutive_failures - 1).min(BACKOFF_SHIFT_CAP);
    base.saturating_mul(1u32 << shift)
}

impl Rebalancer {
    fn run(mut self, rx: Receiver<ControlMsg>) -> DynamicClustering {
        while let Ok(msg) = rx.recv() {
            match msg {
                ControlMsg::Ops(mut ops) => self.pending.append(&mut ops),
                ControlMsg::SetTimeout(t) => self.timeout = t,
                ControlMsg::Rebalance(reply) => {
                    let outcome = self.attempt();
                    match &outcome {
                        Ok(report) => {
                            self.consecutive_failures = 0;
                            // lint: allow(atomic-order): statistics
                            // counter; exact totals are read only after
                            // shutdown() joins this thread, and the
                            // join supplies the happens-before edge.
                            self.shared.swaps.fetch_add(1, Ordering::Relaxed);
                            self.shared
                                .rejected_ops
                                // lint: allow(atomic-order): statistics
                                // counter, exact only after the
                                // shutdown join (same as `swaps`).
                                .fetch_add(report.rejected_ops as u64, Ordering::Relaxed);
                        }
                        Err(_) => {
                            self.consecutive_failures = self.consecutive_failures.saturating_add(1);
                            // lint: allow(atomic-order): statistics
                            // counter, exact only after the shutdown
                            // join (same as `swaps`).
                            self.shared.aborts.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    // The requester may have gone away; the swap (or
                    // abort accounting) above stands either way.
                    let _ = reply.send(outcome);
                }
                ControlMsg::Shutdown => break,
            }
        }
        self.dynamic
    }

    /// One guarded rebalance attempt: churn → rebalance → compile →
    /// validate → publish, with the watchdog deadline checked between
    /// stages. All work happens on a clone; an abort at any stage
    /// drops the clone, leaving the last good state (and plan) in
    /// force.
    fn attempt(&mut self) -> Result<SwapReport, RebalanceAbort> {
        let delay = backoff_delay(self.backoff_base, self.consecutive_failures);
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        let deadline = self.timeout.map(|t| Instant::now() + t);
        let overdue = |stage: &'static str| -> Result<(), RebalanceAbort> {
            match deadline {
                Some(d) if Instant::now() >= d => Err(RebalanceAbort::TimedOut { stage }),
                _ => Ok(()),
            }
        };

        let mut work = self.dynamic.clone();
        let mut rejected = 0usize;
        for op in &self.pending {
            match op {
                ServiceOp::Subscribe { id, rect } => {
                    let got = work.subscribe(rect.clone());
                    debug_assert_eq!(got, *id, "pre-assigned subscription id drifted");
                }
                ServiceOp::Unsubscribe { id } => {
                    if work.unsubscribe(*id).is_err() {
                        rejected += 1;
                    }
                }
                ServiceOp::Resubscribe { id, rect } => {
                    if work.resubscribe(*id, rect.clone()).is_err() {
                        rejected += 1;
                    }
                }
            }
        }
        overdue("churn")?;

        let stats = work.try_rebalance().map_err(RebalanceAbort::Rejected)?;
        overdue("rebalance")?;

        let plan = compile_plan(&work, self.threshold)?;
        overdue("compile")?;
        overdue("validate")?;

        // Commit: the clone becomes the truth and the plan goes live.
        let version = self.shared.plan.epoch() + 1;
        let subscriptions = work.num_subscriptions();
        self.dynamic = work;
        self.pending.clear();
        let published = self
            .shared
            .plan
            .publish(Arc::new(VersionedPlan { version, plan }));
        debug_assert_eq!(published, version);
        self.shared
            .published
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(version);
        Ok(SwapReport {
            version,
            stats,
            rejected_ops: rejected,
            subscriptions,
        })
    }
}

/// Ingest worker: pop, refresh the plan snapshot (one atomic load when
/// unchanged), serve, record.
fn worker_loop(shared: &Shared) {
    let (mut cached, mut epoch) = shared.plan.load_with_epoch();
    let mut scratch = DispatchScratch::new();
    loop {
        let ev = {
            let mut state = shared.queue.lock();
            loop {
                if !state.paused {
                    if let Some(ev) = state.buf.pop_front() {
                        state.in_flight += 1;
                        shared.queue.space.notify_one();
                        break ev;
                    }
                    if state.closed {
                        return;
                    }
                }
                state = shared
                    .queue
                    .ready
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };

        if shared.plan.epoch() != epoch {
            let fresh = shared.plan.load_with_epoch();
            cached = fresh.0;
            epoch = fresh.1;
        }
        let decision = cached.plan.serve(&ev.point, &mut scratch);
        let record = EventRecord {
            id: ev.id,
            plan_version: cached.version,
            decision,
            interested: scratch.interested().len() as u32,
            latency_ns: u64::try_from(ev.enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX),
        };
        shared
            .records
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(record);

        let mut state = shared.queue.lock();
        state.in_flight -= 1;
        if state.buf.is_empty() && state.in_flight == 0 {
            shared.queue.idle.notify_all();
        }
    }
}

impl BrokerService {
    /// Starts the service over an initial clustering state: compiles,
    /// audits and publishes the version-0 plan, then spawns the ingest
    /// workers and the rebalancer.
    ///
    /// # Errors
    ///
    /// Returns the audit failure if the *initial* state does not
    /// compile to a valid plan (nothing is spawned in that case).
    pub fn start(
        dynamic: DynamicClustering,
        config: ServiceConfig,
    ) -> Result<BrokerService, RebalanceAbort> {
        let plan = compile_plan(&dynamic, config.threshold)?;
        let next_slot = dynamic.subscription_slots().len();
        let shared = Arc::new(Shared {
            plan: SnapshotCell::new(Arc::new(VersionedPlan { version: 0, plan })),
            queue: IngestQueue::new(),
            records: Mutex::new(Vec::new()),
            shed_events: Mutex::new(Vec::new()),
            published: Mutex::new(vec![0]),
            offered: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
            rejected_ops: AtomicU64::new(0),
        });

        let workers = (0..config.ingest_threads.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                // lint: allow(thread-panic): worker_loop only moves
                // plain data under poison-recovering locks; if a panic
                // does escape, it is re-raised by the join in
                // shutdown() rather than wedging the other workers.
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        let (tx, rx) = mpsc::channel();
        let rebalancer = Rebalancer {
            dynamic,
            pending: Vec::new(),
            threshold: config.threshold,
            timeout: config.rebalance_timeout,
            backoff_base: config.retry_backoff,
            consecutive_failures: 0,
            shared: Arc::clone(&shared),
        };
        let rebalancer = std::thread::spawn(move || rebalancer.run(rx));

        Ok(BrokerService {
            shared,
            control: Mutex::new(Control { tx, next_slot }),
            workers,
            rebalancer: Some(rebalancer),
            shed_policy: config.shed,
            queue_depth: config.queue_depth.max(1),
        })
    }

    fn control(&self) -> MutexGuard<'_, Control> {
        self.control.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn send(&self, msg: ControlMsg) {
        // The rebalancer only exits on Shutdown, which consumes `self`;
        // a dead receiver here is a bug worth surfacing loudly.
        self.control()
            .tx
            .send(msg)
            .expect("rebalancer thread is alive");
    }

    /// Offers one event, returning its id. Depending on the
    /// [`ShedPolicy`] this may block (lossless backpressure), shed the
    /// event itself, or shed the oldest queued event; every shed is
    /// counted against the returned ids, so
    /// `delivered + shed == offered` always holds at shutdown.
    pub fn offer(&self, point: Point) -> u64 {
        // lint: allow(atomic-order): unique-id allocator; the RMW's
        // atomicity alone guarantees distinct ids, and the total is
        // read exactly only after shutdown() joins every worker.
        let id = self.shared.offered.fetch_add(1, Ordering::Relaxed);
        let mut state = self.shared.queue.lock();
        debug_assert!(!state.closed, "offer after shutdown");
        match self.shed_policy {
            ShedPolicy::Block => {
                while state.buf.len() >= self.queue_depth {
                    state = self
                        .shared
                        .queue
                        .space
                        .wait(state)
                        .unwrap_or_else(|e| e.into_inner());
                }
            }
            ShedPolicy::DropNewest => {
                if state.buf.len() >= self.queue_depth {
                    drop(state);
                    self.record_shed(id);
                    return id;
                }
            }
            ShedPolicy::DropOldest => {
                if state.buf.len() >= self.queue_depth {
                    if let Some(victim) = state.buf.pop_front() {
                        self.record_shed(victim.id);
                    }
                }
            }
        }
        state.buf.push_back(PendingEvent {
            id,
            point,
            enqueued: Instant::now(),
        });
        self.shared.queue.ready.notify_one();
        id
    }

    fn record_shed(&self, id: u64) {
        // lint: allow(atomic-order): statistics counter; the paired
        // shed_events mutex already orders the shed ids themselves,
        // and the total is exact after the shutdown joins.
        self.shared.shed.fetch_add(1, Ordering::Relaxed);
        self.shared
            .shed_events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(id);
    }

    /// Registers a subscription, returning its stable id immediately;
    /// the clustering picks it up at the next rebalance.
    pub fn subscribe(&self, rect: Rect) -> SubscriptionId {
        let mut control = self.control();
        let id = SubscriptionId(control.next_slot);
        control.next_slot += 1;
        control
            .tx
            .send(ControlMsg::Ops(vec![ServiceOp::Subscribe { id, rect }]))
            .expect("rebalancer thread is alive");
        id
    }

    /// Queues an unsubscribe for the next rebalance. Unknown or
    /// already-gone ids are counted as rejected ops, not errors — a
    /// crash-forced removal may legitimately race a user unsubscribe.
    pub fn unsubscribe(&self, id: SubscriptionId) {
        self.send(ControlMsg::Ops(vec![ServiceOp::Unsubscribe { id }]));
    }

    /// Queues a rectangle change for the next rebalance.
    pub fn resubscribe(&self, id: SubscriptionId, rect: Rect) {
        self.send(ControlMsg::Ops(vec![ServiceOp::Resubscribe { id, rect }]));
    }

    /// Runs one rebalance + hot swap on the background thread and
    /// waits for the outcome. On success, events offered after this
    /// returns are decided by the new plan; on abort, the previous
    /// plan (and every queued churn op) stays in force for a later
    /// retry. Ingest never stops either way.
    pub fn rebalance(&self) -> Result<SwapReport, RebalanceAbort> {
        let (reply_tx, reply_rx) = mpsc::channel();
        self.send(ControlMsg::Rebalance(reply_tx));
        reply_rx.recv().expect("rebalancer thread replies")
    }

    /// Retunes the watchdog deadline live (applies from the next
    /// rebalance attempt).
    pub fn set_rebalance_timeout(&self, timeout: Option<Duration>) {
        self.send(ControlMsg::SetTimeout(timeout));
    }

    /// Pauses the ingest workers after their current event (events
    /// keep queueing / shedding per policy). Used to build controlled
    /// overload in tests and maintenance windows.
    pub fn pause_ingest(&self) {
        self.shared.queue.lock().paused = true;
    }

    /// Resumes paused ingest workers.
    pub fn resume_ingest(&self) {
        let mut state = self.shared.queue.lock();
        state.paused = false;
        self.shared.queue.ready.notify_all();
    }

    /// Blocks until the queue is empty and no event is in flight.
    /// Ingest must not be paused, or this never returns.
    pub fn drain(&self) {
        let mut state = self.shared.queue.lock();
        while !state.buf.is_empty() || state.in_flight > 0 {
            state = self
                .shared
                .queue
                .idle
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Current published-plan epoch (0 until the first swap).
    pub fn plan_epoch(&self) -> u64 {
        self.shared.plan.epoch()
    }

    /// Plans published so far (excluding the initial one).
    pub fn swaps(&self) -> u64 {
        // lint: allow(atomic-order): monitoring getter of a monotonic
        // counter; a momentarily stale value is fine, exact totals
        // come from shutdown() after the joins.
        self.shared.swaps.load(Ordering::Relaxed)
    }

    /// Rebalance attempts aborted so far.
    pub fn aborts(&self) -> u64 {
        // lint: allow(atomic-order): monitoring getter of a monotonic
        // counter (same as `swaps`).
        self.shared.aborts.load(Ordering::Relaxed)
    }

    /// Events shed so far.
    pub fn shed(&self) -> u64 {
        // lint: allow(atomic-order): monitoring getter of a monotonic
        // counter (same as `swaps`).
        self.shared.shed.load(Ordering::Relaxed)
    }

    /// Stops the service: drains the queue (resuming ingest if
    /// paused), joins every thread, and returns the final accounting
    /// together with the final clustering state (for oracle replay and
    /// state hand-off).
    pub fn shutdown(mut self) -> (ServiceReport, DynamicClustering) {
        {
            let mut state = self.shared.queue.lock();
            state.paused = false;
            state.closed = true;
            self.shared.queue.ready.notify_all();
            self.shared.queue.space.notify_all();
        }
        for w in self.workers.drain(..) {
            // A worker panic already aborted the process in practice
            // (panic = abort is not set, but the loop body cannot
            // panic on valid plans); surface it if it ever happens.
            w.join().expect("ingest worker exited cleanly");
        }
        self.send(ControlMsg::Shutdown);
        let dynamic = self
            .rebalancer
            .take()
            .expect("rebalancer joined once")
            .join()
            .expect("rebalancer exited cleanly");

        let mut records = std::mem::take(
            &mut *self
                .shared
                .records
                .lock()
                .unwrap_or_else(|e| e.into_inner()),
        );
        records.sort_unstable_by_key(|r| r.id);
        let mut shed_events = std::mem::take(
            &mut *self
                .shared
                .shed_events
                .lock()
                .unwrap_or_else(|e| e.into_inner()),
        );
        shed_events.sort_unstable();
        let published = std::mem::take(
            &mut *self
                .shared
                .published
                .lock()
                .unwrap_or_else(|e| e.into_inner()),
        );
        let report = ServiceReport {
            // lint: allow(atomic-order): every worker and the
            // rebalancer are joined above; the joins supply the
            // happens-before edges that make these totals exact.
            offered: self.shared.offered.load(Ordering::Relaxed),
            delivered: records.len() as u64,
            shed: shed_events.len() as u64,
            // lint: allow(atomic-order): exact after the joins above.
            swaps: self.shared.swaps.load(Ordering::Relaxed),
            // lint: allow(atomic-order): exact after the joins above.
            aborts: self.shared.aborts.load(Ordering::Relaxed),
            // lint: allow(atomic-order): exact after the joins above.
            rejected_ops: self.shared.rejected_ops.load(Ordering::Relaxed),
            shed_policy: self.shed_policy,
            records,
            shed_events,
            published_versions: published,
        };
        (report, dynamic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Threaded end-to-end coverage (swap storms, shed accounting,
    // watchdog aborts) lives in `crates/core/tests/service.rs`, out of
    // the Miri-interpreted `--lib` suite; these tests cover the pure
    // logic only.

    #[test]
    fn shed_policy_parses_and_renders() {
        assert_eq!(ShedPolicy::parse("block"), Some(ShedPolicy::Block));
        assert_eq!(
            ShedPolicy::parse("drop-newest"),
            Some(ShedPolicy::DropNewest)
        );
        assert_eq!(
            ShedPolicy::parse("drop-oldest"),
            Some(ShedPolicy::DropOldest)
        );
        assert_eq!(ShedPolicy::parse("nonsense"), None);
        for p in [
            ShedPolicy::Block,
            ShedPolicy::DropNewest,
            ShedPolicy::DropOldest,
        ] {
            assert_eq!(ShedPolicy::parse(p.as_str()), Some(p));
            assert_eq!(p.to_string(), p.as_str());
        }
    }

    #[test]
    fn config_defaults_are_sane() {
        let d = ServiceConfig::default();
        assert!(d.ingest_threads >= 1);
        assert!(d.queue_depth >= 1);
        assert_eq!(d.shed, ShedPolicy::Block);
        assert!(d.rebalance_timeout.is_some());
        let e = ServiceConfig::from_env();
        assert!(e.queue_depth >= 1);
    }

    #[test]
    fn partition_check_rejects_gaps_and_overlaps() {
        let record = |id| EventRecord {
            id,
            plan_version: 0,
            decision: Delivery::Unicast,
            interested: 0,
            latency_ns: 1,
        };
        let base = ServiceReport {
            offered: 3,
            delivered: 2,
            shed: 1,
            swaps: 0,
            aborts: 0,
            rejected_ops: 0,
            shed_policy: ShedPolicy::DropNewest,
            records: vec![record(0), record(2)],
            shed_events: vec![1],
            published_versions: vec![0],
        };
        assert!(base.partitions_offered());
        let mut gap = base.clone();
        gap.shed_events = vec![2]; // id 1 missing, id 2 double-counted
        assert!(!gap.partitions_offered());
        let mut wrong_count = base.clone();
        wrong_count.shed = 0;
        assert!(!wrong_count.partitions_offered());
        let mut extra = base.clone();
        extra.offered = 2;
        assert!(!extra.partitions_offered());
    }

    #[test]
    fn backoff_is_shift_capped() {
        let base = Duration::from_millis(3);
        assert_eq!(backoff_delay(base, 0), Duration::ZERO);
        assert_eq!(backoff_delay(base, 1), Duration::from_millis(3));
        assert_eq!(backoff_delay(base, 4), Duration::from_millis(24));
        // Far past the cap: 3ms << 6, never more, never overflowing.
        assert_eq!(backoff_delay(base, u32::MAX), Duration::from_millis(3 * 64));
        assert_eq!(backoff_delay(Duration::ZERO, 9), Duration::ZERO);
        // Even a huge base saturates instead of panicking.
        assert_eq!(backoff_delay(Duration::MAX, 40), Duration::MAX);
    }
}
