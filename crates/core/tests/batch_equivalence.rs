//! The batched cell-bucketed kernels are a pure optimization: per-event
//! deliveries (and serve-path interested sets) are bit-identical to the
//! scalar paths for all five grid algorithms and No-Loss, at any batch
//! decomposition and any thread count — so every downstream fixed-chunk
//! `f64` aggregate (`sim`'s `DeliveryBreakdown` sums in particular) is
//! bit-identical too. The end-to-end breakdown identity through the
//! real simulator is pinned by `tests/dispatch_equivalence.rs`, whose
//! evaluators now run on these kernels.

use geometry::{Grid, Interval, Point, Rect};
use proptest::prelude::*;
use pubsub_core::{
    parallel, BatchScratch, BitSet, CellProbability, ClusteringAlgorithm, Delivery, DispatchPlan,
    DispatchScratch, GridFramework, KMeans, KMeansVariant, MstClustering, NoLossClustering,
    NoLossConfig, NoLossDispatchPlan, PairsStrategy, PairwiseGrouping,
};

/// Random interval inside (0, 20], sometimes unbounded.
fn interval_strategy() -> impl Strategy<Value = Interval> {
    prop_oneof![
        3 => (0.0..20.0f64, 0.0..20.0f64).prop_map(|(a, b)| Interval::from_unordered(a, b)),
        1 => (0.0..20.0f64).prop_map(Interval::greater_than),
        1 => (0.0..20.0f64).prop_map(Interval::at_most),
        1 => Just(Interval::all()),
    ]
}

fn rect_strategy() -> impl Strategy<Value = Rect> {
    prop::collection::vec(interval_strategy(), 2).prop_map(Rect::new)
}

/// Points both on- and off-grid (the grid covers (0, 20]).
fn point_strategy() -> impl Strategy<Value = Point> {
    prop::collection::vec(-1.0..22.0f64, 2).prop_map(Point::new)
}

/// All five grid clustering algorithms of the paper.
fn algorithms() -> Vec<Box<dyn ClusteringAlgorithm>> {
    vec![
        Box::new(KMeans::new(KMeansVariant::MacQueen)),
        Box::new(KMeans::new(KMeansVariant::Forgy)),
        Box::new(PairwiseGrouping::new(PairsStrategy::Exact)),
        Box::new(PairwiseGrouping::new(PairsStrategy::Approximate {
            seed: 9,
        })),
        Box::new(MstClustering::new()),
    ]
}

fn build_framework(subs: &[Rect], max_cells: Option<usize>) -> GridFramework {
    let grid = Grid::cube(0.0, 20.0, 2, 10).unwrap();
    let probs = CellProbability::uniform(&grid);
    GridFramework::build(grid, subs, &probs, max_cells)
}

fn interested_set(subs: &[Rect], p: &Point) -> BitSet {
    BitSet::from_members(
        subs.len(),
        subs.iter()
            .enumerate()
            .filter(|(_, r)| r.contains(p))
            .map(|(i, _)| i),
    )
}

/// Batched plan decisions under a pinned thread count, via the same
/// fixed-chunk decomposition `sim::delivery` uses.
fn chunked_batched_decisions(
    plan: &DispatchPlan,
    points: &[Point],
    sets: &[BitSet],
    threads: usize,
) -> Vec<Delivery> {
    parallel::with_threads(threads, || {
        parallel::par_chunks(points.len(), 64, |range| {
            let mut scratch = BatchScratch::new();
            let mut out = Vec::with_capacity(range.len());
            plan.dispatch_batch(range, |e| &points[e], |e| &sets[e], &mut scratch, &mut out);
            out
        })
        .into_iter()
        .flatten()
        .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Grid dispatch: batched == scalar for all five algorithms, on
    /// both complete and truncated frameworks, whole-stream and chunked
    /// at 1 and 8 threads.
    #[test]
    fn batched_dispatch_equals_scalar_for_all_algorithms(
        subs in prop::collection::vec(rect_strategy(), 1..20),
        points in prop::collection::vec(point_strategy(), 1..40),
        threshold in 0.0..1.0f64,
        k in 1usize..6,
    ) {
        let sets: Vec<BitSet> = points.iter().map(|p| interested_set(&subs, p)).collect();
        for max_cells in [None, Some(5)] {
            let fw = build_framework(&subs, max_cells);
            for alg in algorithms() {
                let clustering = alg.cluster(&fw, k);
                let plan = DispatchPlan::compile(&fw, &clustering).with_threshold(threshold);
                let reference: Vec<Delivery> = points
                    .iter()
                    .zip(&sets)
                    .map(|(p, s)| plan.dispatch(p, s))
                    .collect();
                let mut scratch = BatchScratch::new();
                let mut whole = Vec::new();
                plan.dispatch_batch(
                    0..points.len(),
                    |e| &points[e],
                    |e| &sets[e],
                    &mut scratch,
                    &mut whole,
                );
                prop_assert_eq!(
                    &whole,
                    &reference,
                    "{} (max_cells {:?}): whole-stream batch",
                    alg.name(),
                    max_cells
                );
                for threads in [1, 8] {
                    let chunked = chunked_batched_decisions(&plan, &points, &sets, threads);
                    prop_assert_eq!(
                        &chunked,
                        &reference,
                        "{} (max_cells {:?}) diverged at {} thread(s)",
                        alg.name(),
                        max_cells,
                        threads
                    );
                }
            }
        }
    }

    /// The batched serve path computes the exact interested set and the
    /// same decision as scalar `serve`, event by event, at batch sizes
    /// below and above the bucket-sort threshold.
    #[test]
    fn batched_serve_equals_scalar_serve(
        subs in prop::collection::vec(rect_strategy(), 1..20),
        points in prop::collection::vec(point_strategy(), 1..40),
        threshold in 0.0..1.0f64,
    ) {
        for max_cells in [None, Some(5)] {
            let fw = build_framework(&subs, max_cells);
            let clustering = KMeans::new(KMeansVariant::MacQueen).cluster(&fw, 4);
            let plan = DispatchPlan::compile(&fw, &clustering)
                .with_threshold(threshold)
                .with_subscriptions(&subs);
            let mut scalar = DispatchScratch::new();
            let reference: Vec<(Delivery, Vec<usize>)> = points
                .iter()
                .map(|p| {
                    let d = plan.serve(p, &mut scalar);
                    (d, scalar.interested().to_vec())
                })
                .collect();
            for batch in [3usize, points.len()] {
                let mut scratch = BatchScratch::new();
                let mut out = Vec::new();
                let mut start = 0;
                while start < points.len() {
                    let end = (start + batch).min(points.len());
                    let before = out.len();
                    plan.serve_batch(start..end, |e| &points[e], &mut scratch, &mut out);
                    for local in 0..(end - start) {
                        prop_assert_eq!(
                            out[before + local],
                            reference[start + local].0,
                            "decision, batch {}, event {}",
                            batch,
                            start + local
                        );
                        prop_assert_eq!(
                            scratch.interested_of(local).collect::<Vec<_>>(),
                            reference[start + local].1.clone(),
                            "interested set, batch {}, event {}",
                            batch,
                            start + local
                        );
                    }
                    start = end;
                }
            }
        }
    }

    /// No-Loss: the chunked plan path is bit-identical to per-event
    /// matching at 1 and 8 threads (No-Loss dispatch is already
    /// per-region; this pins the chunk decomposition the sim uses).
    #[test]
    fn noloss_chunked_identical_across_threads(
        subs in prop::collection::vec(rect_strategy(), 1..15),
        points in prop::collection::vec(point_strategy(), 1..40),
    ) {
        let cfg = NoLossConfig { max_rects: 60, iterations: 2, max_candidates_per_round: 5_000 };
        let nl = NoLossClustering::build(&subs, &[], &cfg, 30);
        let plan = NoLossDispatchPlan::compile(&nl);
        let reference: Vec<Option<usize>> = points.iter().map(|p| nl.match_event(p)).collect();
        for threads in [1, 8] {
            let chunked: Vec<Option<usize>> = parallel::with_threads(threads, || {
                parallel::par_chunks(points.len(), 64, |range| {
                    let mut out = Vec::with_capacity(range.len());
                    plan.dispatch_chunk(range, |e| &points[e], &mut out);
                    out
                })
                .into_iter()
                .flatten()
                .collect()
            });
            prop_assert_eq!(&chunked, &reference, "diverged at {} thread(s)", threads);
        }
    }
}

/// Breakdown-shaped aggregates: a `DeliveryBreakdown`-style chunked
/// `f64` reduction over the decisions is bit-identical between the
/// scalar and batched paths at 1 and 8 threads — equal per-event
/// decisions in equal order, combined over the same fixed 64-event
/// chunks, leave no room for the sums to drift.
#[test]
fn breakdown_style_aggregates_bit_identical() {
    use rand::prelude::*;

    let mut rng = StdRng::seed_from_u64(2002);
    let subs: Vec<Rect> = (0..300)
        .map(|_| {
            let lo = rng.gen_range(0.0..18.0);
            let len = rng.gen_range(0.2..4.0);
            let lo2 = rng.gen_range(0.0..18.0);
            let len2 = rng.gen_range(0.2..4.0);
            Rect::new(vec![
                Interval::new(lo, (lo + len).min(20.0)).unwrap(),
                Interval::new(lo2, (lo2 + len2).min(20.0)).unwrap(),
            ])
        })
        .collect();
    let points: Vec<Point> = (0..2_000)
        .map(|_| Point::new(vec![rng.gen_range(-1.0..21.0), rng.gen_range(-1.0..21.0)]))
        .collect();
    let sets: Vec<BitSet> = points.iter().map(|p| interested_set(&subs, p)).collect();
    let fw = build_framework(&subs, Some(200));
    let clustering = KMeans::new(KMeansVariant::Forgy).cluster(&fw, 12);
    let plan = DispatchPlan::compile(&fw, &clustering).with_threshold(0.25);

    // Pseudo-cost per event from its decision and interested count —
    // the same shape as the simulator's multicast/unicast cost sums.
    let aggregate = |decisions: &[Delivery]| -> (usize, usize, u64, u64) {
        let partials = parallel::par_chunks(points.len(), 64, |range| {
            let mut multi = 0usize;
            let mut uni = 0usize;
            let mut mc = 0.0f64;
            let mut uc = 0.0f64;
            for e in range {
                match decisions[e] {
                    Delivery::Multicast { group } => {
                        multi += 1;
                        mc += (group as f64 + 1.0).sqrt() * sets[e].count() as f64;
                    }
                    Delivery::Unicast => {
                        uni += 1;
                        uc += 1.5 * sets[e].count() as f64 + 0.25;
                    }
                }
            }
            (multi, uni, mc, uc)
        });
        let mut total = (0usize, 0usize, 0.0f64, 0.0f64);
        for (m, u, mc, uc) in partials {
            total.0 += m;
            total.1 += u;
            total.2 += mc;
            total.3 += uc;
        }
        (total.0, total.1, total.2.to_bits(), total.3.to_bits())
    };

    let runs: Vec<(usize, usize, u64, u64)> = [1usize, 8]
        .iter()
        .flat_map(|&threads| {
            parallel::with_threads(threads, || {
                let scalar: Vec<Delivery> = parallel::par_chunks(points.len(), 64, |range| {
                    let mut out = Vec::with_capacity(range.len());
                    plan.dispatch_chunk(range, |e| &points[e], |e| &sets[e], &mut out);
                    out
                })
                .into_iter()
                .flatten()
                .collect();
                let batched: Vec<Delivery> = parallel::par_chunks(points.len(), 64, |range| {
                    let mut scratch = BatchScratch::new();
                    let mut out = Vec::with_capacity(range.len());
                    plan.dispatch_batch(
                        range,
                        |e| &points[e],
                        |e| &sets[e],
                        &mut scratch,
                        &mut out,
                    );
                    out
                })
                .into_iter()
                .flatten()
                .collect();
                assert_eq!(scalar, batched, "decisions diverged at {threads} thread(s)");
                vec![aggregate(&scalar), aggregate(&batched)]
            })
        })
        .collect();
    for r in &runs {
        assert_eq!(r, &runs[0], "aggregates diverged across paths/threads");
    }
}
