//! Real-thread stress of the deterministic fan-out primitives.
//!
//! The `parallel` unit tests pin small determinism cases; these suites
//! push the scoped fan-out, the work-stealing chunk counter, and the
//! per-slot ownership handoff of `par_map_vec` hard enough for the
//! nightly ThreadSanitizer job to observe every synchronization edge
//! at native speed (Miri never interprets these — see `tests/service.rs`).

use pubsub_core::parallel;

#[test]
fn chunk_counter_claims_every_chunk_exactly_once_under_contention() {
    // Many more chunks than threads keeps the Relaxed ticket counter
    // contended; the element-wise output proves no chunk was dropped
    // or doubled.
    for threads in [2, 4, 8] {
        let out = parallel::with_threads(threads, || {
            parallel::par_chunks(10_000, 7, |r| r.clone().sum::<usize>())
        });
        let serial: Vec<usize> = (0..10_000usize.div_ceil(7))
            .map(|c| (c * 7..((c + 1) * 7).min(10_000)).sum())
            .collect();
        assert_eq!(out, serial, "threads = {threads}");
    }
}

#[test]
fn f64_reductions_stay_bit_identical_at_stress_scale() {
    let f = |i: usize| ((i as f64) * 1e-4).cos() * 1e-6 + ((i % 13) as f64) * 1e8;
    let reference = parallel::with_threads(1, || parallel::par_sum_f64(200_000, 512, f));
    for threads in [2, 5, 8, 16] {
        let sum = parallel::with_threads(threads, || parallel::par_sum_f64(200_000, 512, f));
        assert_eq!(sum.to_bits(), reference.to_bits(), "threads = {threads}");
    }
}

#[test]
fn par_map_vec_hands_each_slot_to_exactly_one_worker() {
    // Boxed payloads make a double-take or a dropped slot an
    // observable ownership bug (and a tsan-visible race on the slot
    // mutexes).
    let make = || (0..5_000).map(|i| Box::new(i as u64)).collect::<Vec<_>>();
    let serial: Vec<u64> = make().into_iter().map(|b| *b * 3).collect();
    for threads in [2, 4, 8] {
        let par = parallel::with_threads(threads, || {
            parallel::par_map_vec(make(), 1, |b: Box<u64>| *b * 3)
        });
        assert_eq!(par, serial, "threads = {threads}");
    }
}

#[test]
fn independent_regions_on_separate_threads_do_not_interfere() {
    // The with_threads override is thread-local; concurrent OS threads
    // pinning different counts must each see their own fan-out and
    // produce the same bits.
    let expected = parallel::with_threads(1, || {
        parallel::par_sum_f64(50_000, 256, |i| (i as f64).sqrt())
    });
    std::thread::scope(|scope| {
        for threads in [1usize, 2, 4, 8] {
            scope.spawn(move || {
                for _ in 0..4 {
                    let sum = parallel::with_threads(threads, || {
                        parallel::par_sum_f64(50_000, 256, |i| (i as f64).sqrt())
                    });
                    assert_eq!(sum.to_bits(), expected.to_bits(), "threads = {threads}");
                }
            });
        }
    });
}

#[test]
fn nested_regions_run_serially_inside_workers() {
    // Workers pin themselves to one thread; a nested par_map inside a
    // parallel region must still match the serial result rather than
    // oversubscribing or deadlocking the scope.
    let serial: Vec<u64> = (0..200u64)
        .map(|i| (0..50).map(|j| i * 50 + j).sum())
        .collect();
    for threads in [2, 8] {
        let nested = parallel::with_threads(threads, || {
            parallel::par_map_indexed(200, 1, |i| {
                parallel::par_map_indexed(50, 1, |j| (i * 50 + j) as u64)
                    .into_iter()
                    .sum::<u64>()
            })
        });
        assert_eq!(nested, serial, "threads = {threads}");
    }
}

#[test]
fn worker_panic_propagates_before_any_result_is_observable() {
    for threads in [2, 8] {
        let result = std::panic::catch_unwind(|| {
            parallel::with_threads(threads, || {
                parallel::par_map_indexed(10_000, 1, |i| {
                    if i == 9_999 {
                        panic!("last chunk fails");
                    }
                    i
                })
            })
        });
        assert!(result.is_err(), "threads = {threads}");
    }
}
