//! Property tests pinning [`CompressedSet`] against a [`BitSet`]
//! oracle: after any interleaving of inserts, removes and grows, every
//! observable — membership, count, iteration order, intersection
//! counts through the adaptive array/bitmap/gallop paths, and waste
//! counts — agrees with the plain bitset computing the same thing.

use proptest::prelude::*;
use pubsub_core::{BitSet, CompressedSet};

/// One mutation of the pair-under-test.
#[derive(Debug, Clone)]
enum Op {
    Insert(usize),
    Remove(usize),
    Grow(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0usize..600).prop_map(Op::Insert),
        2 => (0usize..600).prop_map(Op::Remove),
        1 => (0usize..300).prop_map(Op::Grow),
    ]
}

/// Applies the ops to a `(CompressedSet, BitSet)` pair over a starting
/// universe, keeping the oracle in lockstep. Out-of-universe indices
/// are skipped (both containers treat them as contract violations).
fn run_ops(universe: usize, ops: &[Op]) -> (CompressedSet, BitSet) {
    let mut c = CompressedSet::new(universe);
    let mut b = BitSet::new(universe);
    let mut n = universe;
    for op in ops {
        match *op {
            Op::Insert(i) if i < n => {
                let inserted = c.insert(i);
                assert_eq!(inserted, !b.contains(i), "insert({i}) return value");
                b.insert(i);
            }
            Op::Remove(i) if i < n => {
                let removed = c.remove(i);
                assert_eq!(removed, b.contains(i), "remove({i}) return value");
                b.remove(i);
            }
            Op::Grow(extra) => {
                n += extra;
                c.grow(n);
                let mut grown = BitSet::new(n);
                for i in b.iter() {
                    grown.insert(i);
                }
                b = grown;
            }
            _ => {}
        }
    }
    (c, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Membership, count, iteration and round-trips agree with the
    /// oracle after any op sequence.
    #[test]
    fn observables_match_the_bitset_oracle(
        universe in 0usize..600,
        ops in prop::collection::vec(op_strategy(), 0..60),
    ) {
        let (c, b) = run_ops(universe, &ops);
        prop_assert_eq!(c.count(), b.count());
        prop_assert_eq!(c.is_empty(), b.count() == 0);
        prop_assert_eq!(c.universe(), b.universe());
        for i in 0..b.universe() {
            prop_assert_eq!(c.contains(i), b.contains(i), "membership of {}", i);
        }
        let via_iter: Vec<usize> = c.iter().collect();
        let oracle: Vec<usize> = b.iter().collect();
        prop_assert_eq!(via_iter, oracle, "iteration order");
        prop_assert_eq!(&c.to_bitset(), &b, "to_bitset round-trip");
        prop_assert_eq!(
            CompressedSet::from_bitset(&b).to_bitset(),
            b,
            "from_bitset round-trip"
        );
    }

    /// Intersection and waste counts agree with the oracle for every
    /// representation pairing (array x array through the gallop and
    /// merge paths, array x bitmap, bitmap x bitmap) — the universe
    /// and density ranges straddle the adaptive threshold.
    #[test]
    fn intersection_and_waste_counts_match(
        universe in 1usize..600,
        a_ops in prop::collection::vec(op_strategy(), 0..80),
        b_ops in prop::collection::vec(op_strategy(), 0..80),
    ) {
        // Drop grows so both sides stay on the same universe.
        let no_grow = |ops: &[Op]| -> Vec<Op> {
            ops.iter()
                .filter(|o| !matches!(o, Op::Grow(_)))
                .cloned()
                .collect()
        };
        let (ca, oa) = run_ops(universe, &no_grow(&a_ops));
        let (cb, ob) = run_ops(universe, &no_grow(&b_ops));
        let expected_inter = oa.iter().filter(|&i| ob.contains(i)).count();
        prop_assert_eq!(ca.intersection_count(&cb), expected_inter);
        prop_assert_eq!(cb.intersection_count(&ca), expected_inter, "symmetry");
        let (only_a, only_b) = ca.waste_counts(&cb);
        prop_assert_eq!(only_a, oa.count() - expected_inter, "a-only count");
        prop_assert_eq!(only_b, ob.count() - expected_inter, "b-only count");
    }

    /// Weighted waste sums agree with a brute-force oracle over the
    /// dense members for every representation pairing — the kernel the
    /// aggregated (class-weighted) distance matrix streams.
    #[test]
    fn weighted_waste_counts_match(
        universe in 1usize..600,
        a_ops in prop::collection::vec(op_strategy(), 0..80),
        b_ops in prop::collection::vec(op_strategy(), 0..80),
        weight_seed in 0u64..1000,
    ) {
        let no_grow = |ops: &[Op]| -> Vec<Op> {
            ops.iter()
                .filter(|o| !matches!(o, Op::Grow(_)))
                .cloned()
                .collect()
        };
        let (ca, oa) = run_ops(universe, &no_grow(&a_ops));
        let (cb, ob) = run_ops(universe, &no_grow(&b_ops));
        let weights: Vec<u64> = (0..universe as u64)
            .map(|i| (i.wrapping_mul(weight_seed + 1) % 17) + 1)
            .collect();
        let brute_a: u64 = oa.iter().filter(|&i| !ob.contains(i)).map(|i| weights[i]).sum();
        let brute_b: u64 = ob.iter().filter(|&i| !oa.contains(i)).map(|i| weights[i]).sum();
        prop_assert_eq!(ca.weighted_waste_counts(&cb, &weights), (brute_a, brute_b));
        prop_assert_eq!(cb.weighted_waste_counts(&ca, &weights), (brute_b, brute_a), "symmetry");
        prop_assert_eq!(
            oa.weighted_waste_counts(&ob, &weights),
            (brute_a, brute_b),
            "dense kernel"
        );
    }

    /// Skewed pairing: one tiny array against one dense set — the
    /// shape that exercises the galloping intersection's exponential
    /// probe resumption across many strides.
    #[test]
    fn gallop_path_agrees_on_skewed_pairs(
        small in prop::collection::vec(0usize..4096, 0..8),
        stride in 1usize..9,
        offset in 0usize..8,
    ) {
        let universe = 4096;
        let mut a = CompressedSet::new(universe);
        let mut oa = BitSet::new(universe);
        for &i in &small {
            a.insert(i);
            oa.insert(i);
        }
        let mut b = CompressedSet::new(universe);
        let mut ob = BitSet::new(universe);
        let mut i = offset;
        while i < universe {
            b.insert(i);
            ob.insert(i);
            i += stride;
        }
        let expected = oa.iter().filter(|&i| ob.contains(i)).count();
        prop_assert_eq!(a.intersection_count(&b), expected);
        prop_assert_eq!(b.intersection_count(&a), expected, "symmetry");
    }
}
