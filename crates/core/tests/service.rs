//! End-to-end swap semantics of the always-on broker service:
//!
//! * a plan-swap storm (one rebalance + hot swap per phase) is
//!   bit-identical to a serial oracle that replays the same op/event
//!   interleaving with no concurrency at all, at 1 and 8 ingest
//!   threads — every event decided by exactly one validated plan;
//! * `delivered + shed` exactly partitions offered load under each
//!   shed policy, with the shed id sets the policies promise;
//! * a timed-out rebalance aborts, rolls back, keeps serving the old
//!   plan, retains its churn, and recovers after the watchdog is
//!   retuned live.
//!
//! These tests are deliberately placed outside the crate (`tests/`) so
//! the Miri CI job, which interprets `--lib` only, runs the small
//! snapshot unit tests but not these thread-heavy suites.

use std::time::Duration;

use geometry::{Grid, Interval, Point, Rect};
use pubsub_core::{
    BrokerService, CellProbability, Delivery, DispatchPlan, DispatchScratch, DynamicClustering,
    KMeans, KMeansVariant, RebalanceAbort, ServiceConfig, ShedPolicy, SubscriptionId,
};
use rand::prelude::*;

const CELLS: usize = 64;
const GROUPS: usize = 8;
const THRESHOLD: f64 = 0.15;

fn random_rect(rng: &mut StdRng) -> Rect {
    let lo = rng.gen_range(0.0..0.9);
    let width = rng.gen_range(0.02..0.1);
    Rect::new(vec![
        Interval::new(lo, (lo + width).min(1.0)).expect("valid interval")
    ])
}

fn seed_dynamic(n: usize, seed: u64) -> (DynamicClustering, Vec<SubscriptionId>) {
    let grid = Grid::cube(0.0, 1.0, 1, CELLS).expect("grid");
    let probs = CellProbability::uniform(&grid);
    let mut dynamic =
        DynamicClustering::new(grid, probs, KMeans::new(KMeansVariant::MacQueen), GROUPS);
    let mut rng = StdRng::seed_from_u64(seed);
    let ids = (0..n)
        .map(|_| dynamic.subscribe(random_rect(&mut rng)))
        .collect();
    dynamic.try_rebalance().expect("seed population rebalances");
    (dynamic, ids)
}

/// The oracle's plan compiler: public-API reimplementation of what the
/// service publishes (tombstoned slots become contain-nothing
/// degenerate rectangles), so agreement is checked against an
/// independent construction.
fn oracle_plan(dynamic: &DynamicClustering) -> DispatchPlan {
    let bounds = dynamic.framework().grid().bounds().clone();
    let empty = Rect::new(
        bounds
            .intervals()
            .iter()
            .map(|iv| Interval::new(iv.lo(), iv.lo()).expect("degenerate interval"))
            .collect(),
    );
    let rects: Vec<Rect> = dynamic
        .subscription_slots()
        .iter()
        .map(|s| s.clone().unwrap_or_else(|| empty.clone()))
        .collect();
    DispatchPlan::compile(dynamic.framework(), dynamic.clustering())
        .with_threshold(THRESHOLD)
        .with_subscriptions(&rects)
}

/// One deterministically generated storm phase.
struct Phase {
    unsubscribe: SubscriptionId,
    subscribe: Rect,
    resubscribe: (SubscriptionId, Rect),
    events: Vec<Point>,
}

fn make_phases(ids: &[SubscriptionId], phases: usize, events_per_phase: usize) -> Vec<Phase> {
    let mut rng = StdRng::seed_from_u64(99);
    (0..phases)
        .map(|p| Phase {
            unsubscribe: ids[p],
            subscribe: random_rect(&mut rng),
            resubscribe: (ids[ids.len() - 1 - p], random_rect(&mut rng)),
            events: (0..events_per_phase)
                .map(|_| Point::new(vec![rng.gen_range(0.0..1.0)]))
                .collect(),
        })
        .collect()
}

/// Every event is decided by exactly one validated plan, bit-identical
/// to a serial oracle replay, regardless of ingest thread count.
#[test]
fn swap_storm_is_bit_identical_to_serial_oracle() {
    const N: usize = 60;
    const PHASES: usize = 10;
    const EVENTS_PER_PHASE: usize = 40;

    // --- Serial oracle: replay churn + rebalance + serve with no
    // service, no threads, no queue.
    let (mut oracle, ids) = seed_dynamic(N, 7);
    let phases = make_phases(&ids, PHASES, EVENTS_PER_PHASE);
    let mut scratch = DispatchScratch::new();
    // (event id, plan version, decision, interested) in offer order.
    let mut expected: Vec<(u64, u64, Delivery, u32)> = Vec::new();
    let mut next_event = 0u64;
    for (p, phase) in phases.iter().enumerate() {
        oracle.unsubscribe(phase.unsubscribe).expect("oracle unsub");
        oracle.subscribe(phase.subscribe.clone());
        let (rid, rect) = &phase.resubscribe;
        oracle
            .resubscribe(*rid, rect.clone())
            .expect("oracle resub");
        oracle.try_rebalance().expect("oracle rebalance");
        let plan = oracle_plan(&oracle);
        for point in &phase.events {
            let decision = plan.serve(point, &mut scratch);
            expected.push((
                next_event,
                (p + 1) as u64,
                decision,
                scratch.interested().len() as u32,
            ));
            next_event += 1;
        }
    }

    for threads in [1usize, 8] {
        let (dynamic, _) = seed_dynamic(N, 7);
        let service = BrokerService::start(
            dynamic,
            ServiceConfig {
                ingest_threads: threads,
                threshold: THRESHOLD,
                ..ServiceConfig::default()
            },
        )
        .expect("service starts");
        for phase in &phases {
            service.unsubscribe(phase.unsubscribe);
            service.subscribe(phase.subscribe.clone());
            let (rid, rect) = &phase.resubscribe;
            service.resubscribe(*rid, rect.clone());
            let swap = service.rebalance().expect("storm swap");
            assert_eq!(swap.rejected_ops, 0);
            for point in &phase.events {
                service.offer(point.clone());
            }
            // Quiesce between phases: with the queue drained, every
            // event of this phase was decided by this phase's plan.
            service.drain();
        }
        let (report, final_dynamic) = service.shutdown();

        assert_eq!(report.swaps, PHASES as u64);
        assert_eq!(report.aborts, 0);
        assert!(report.partitions_offered());
        assert_eq!(report.shed, 0);
        assert_eq!(report.delivered, (PHASES * EVENTS_PER_PHASE) as u64);
        assert_eq!(
            report.published_versions,
            (0..=PHASES as u64).collect::<Vec<_>>()
        );

        let got: Vec<(u64, u64, Delivery, u32)> = report
            .records
            .iter()
            .map(|r| (r.id, r.plan_version, r.decision, r.interested))
            .collect();
        assert_eq!(got, expected, "diverged from oracle at {threads} thread(s)");

        // The service's final clustering state matches the oracle's.
        assert_eq!(
            final_dynamic.num_subscriptions(),
            oracle.num_subscriptions()
        );
        assert_eq!(
            final_dynamic.subscription_slots(),
            oracle.subscription_slots()
        );
    }
}

fn shed_service(policy: ShedPolicy, depth: usize) -> BrokerService {
    let (dynamic, _) = seed_dynamic(20, 3);
    BrokerService::start(
        dynamic,
        ServiceConfig {
            ingest_threads: 2,
            queue_depth: depth,
            shed: policy,
            threshold: THRESHOLD,
            ..ServiceConfig::default()
        },
    )
    .expect("service starts")
}

#[test]
fn drop_newest_sheds_the_overflow_and_partitions_load() {
    let service = shed_service(ShedPolicy::DropNewest, 4);
    service.pause_ingest();
    for i in 0..10u64 {
        assert_eq!(service.offer(Point::new(vec![0.5])), i);
    }
    // Queue held the first 4; the 6 newest were shed at offer time.
    assert_eq!(service.shed(), 6);
    service.resume_ingest();
    service.drain();
    let (report, _) = service.shutdown();
    assert!(report.partitions_offered());
    assert_eq!(report.offered, 10);
    assert_eq!(report.delivered, 4);
    assert_eq!(report.shed, 6);
    assert_eq!(
        report.records.iter().map(|r| r.id).collect::<Vec<_>>(),
        vec![0, 1, 2, 3]
    );
    assert_eq!(report.shed_events, vec![4, 5, 6, 7, 8, 9]);
    assert_eq!(report.shed_policy, ShedPolicy::DropNewest);
}

#[test]
fn drop_oldest_keeps_the_freshest_window() {
    let service = shed_service(ShedPolicy::DropOldest, 4);
    service.pause_ingest();
    for _ in 0..10 {
        service.offer(Point::new(vec![0.5]));
    }
    service.resume_ingest();
    service.drain();
    let (report, _) = service.shutdown();
    assert!(report.partitions_offered());
    assert_eq!(report.delivered, 4);
    assert_eq!(report.shed, 6);
    // The queue always holds the freshest window.
    assert_eq!(
        report.records.iter().map(|r| r.id).collect::<Vec<_>>(),
        vec![6, 7, 8, 9]
    );
    assert_eq!(report.shed_events, vec![0, 1, 2, 3, 4, 5]);
}

#[test]
fn block_policy_is_lossless_backpressure() {
    let service = shed_service(ShedPolicy::Block, 4);
    service.pause_ingest();
    for _ in 0..4 {
        service.offer(Point::new(vec![0.5]));
    }
    // The queue is full: further offers must block until a worker
    // frees a slot, never shed.
    std::thread::scope(|scope| {
        let svc = &service;
        let blocked = scope.spawn(move || {
            for _ in 0..6 {
                svc.offer(Point::new(vec![0.25]));
            }
        });
        // Give the offerer a chance to hit the full queue, then open
        // the drain; it must finish without shedding.
        std::thread::sleep(Duration::from_millis(50));
        service.resume_ingest();
        blocked.join().expect("blocked offerer finishes");
    });
    service.drain();
    let (report, _) = service.shutdown();
    assert!(report.partitions_offered());
    assert_eq!(report.offered, 10);
    assert_eq!(report.delivered, 10);
    assert_eq!(report.shed, 0);
    assert!(report.shed_events.is_empty());
}

/// A timed-out rebalance aborts and rolls back: the old plan keeps
/// serving, the churn stays queued, and after the watchdog is retuned
/// live the same churn lands in the next successful swap.
#[test]
fn watchdog_abort_rolls_back_and_recovers() {
    let (dynamic, _) = seed_dynamic(30, 5);
    let before = 30;
    let service = BrokerService::start(
        dynamic,
        ServiceConfig {
            ingest_threads: 2,
            threshold: THRESHOLD,
            rebalance_timeout: Some(Duration::ZERO),
            retry_backoff: Duration::from_micros(100),
            ..ServiceConfig::default()
        },
    )
    .expect("service starts");

    let mut rng = StdRng::seed_from_u64(17);
    let added = service.subscribe(random_rect(&mut rng));
    assert_eq!(added, SubscriptionId(before));

    // Every attempt times out instantly (deadline already passed at
    // the first stage check); repeated failures exercise the backoff.
    for expected_aborts in 1..=3u64 {
        match service.rebalance() {
            Err(RebalanceAbort::TimedOut { stage }) => assert_eq!(stage, "churn"),
            other => panic!("expected timeout, got {other:?}"),
        }
        assert_eq!(service.aborts(), expected_aborts);
    }
    assert_eq!(service.swaps(), 0);
    assert_eq!(service.plan_epoch(), 0, "no plan published on abort");

    // The old plan still serves while the rebalancer is wedged.
    for _ in 0..20 {
        service.offer(Point::new(vec![rng.gen_range(0.0..1.0)]));
    }
    service.drain();

    // Live retune: disable the watchdog, and the *retained* churn
    // (the subscribe above) lands in the recovered swap.
    service.set_rebalance_timeout(None);
    let swap = service.rebalance().expect("recovered swap");
    assert_eq!(swap.version, 1);
    assert_eq!(swap.rejected_ops, 0);
    assert_eq!(swap.subscriptions, before + 1);
    assert_eq!(service.plan_epoch(), 1);

    for _ in 0..20 {
        service.offer(Point::new(vec![rng.gen_range(0.0..1.0)]));
    }
    service.drain();
    let (report, final_dynamic) = service.shutdown();

    assert_eq!(report.aborts, 3);
    assert_eq!(report.swaps, 1);
    assert!(report.partitions_offered());
    assert_eq!(report.published_versions, vec![0, 1]);
    // Pre-recovery events were decided by plan 0, post-recovery by 1.
    for r in &report.records {
        assert_eq!(r.plan_version, if r.id < 20 { 0 } else { 1 });
    }
    assert_eq!(final_dynamic.num_subscriptions(), before + 1);
}

/// Sanity for the knob-driven constructor under test env isolation.
#[test]
fn from_env_config_runs_a_service() {
    let (dynamic, _) = seed_dynamic(10, 2);
    let config = ServiceConfig {
        ingest_threads: 2,
        ..ServiceConfig::from_env()
    };
    let service = BrokerService::start(dynamic, config).expect("service starts");
    for _ in 0..50 {
        service.offer(Point::new(vec![0.3]));
    }
    service.drain();
    let (report, _) = service.shutdown();
    assert!(report.partitions_offered());
    assert_eq!(report.delivered, 50);
}
