//! Property-based proof that the incremental churn pipeline is
//! bit-identical to the full-rebuild path.
//!
//! Random subscribe/unsubscribe/resubscribe interleavings are replayed
//! through two [`DynamicClustering`]s that differ only in their dirty
//! threshold — one forced onto the incremental `apply_delta` path, one
//! forced onto the cold full-rebuild path — and through both at
//! `PUBSUB_THREADS` 1 and 8. Every rebalance must report the same move
//! count, and the final frameworks and clusterings must agree to the
//! bit (memberships, cell lists, and `f64` probabilities compared via
//! `to_bits`). This is the determinism contract of DESIGN.md §10: the
//! threshold and thread count are pure performance knobs, never
//! observable in results.

use geometry::{CellId, Grid, Interval, Rect};
use proptest::prelude::*;
use pubsub_core::{
    parallel, CellProbability, DynamicClustering, KMeans, KMeansVariant, SubscriptionId,
};

/// One random churn operation; indices are taken modulo the number of
/// issued ids at execution time so every op is valid.
#[derive(Debug, Clone)]
enum Op {
    Subscribe(f64, f64),
    Unsubscribe(usize),
    Resubscribe(usize, f64, f64),
    Rebalance,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0.0..10.0f64, 0.5..3.0f64).prop_map(|(lo, w)| Op::Subscribe(lo, lo + w)),
        2 => (0usize..64).prop_map(Op::Unsubscribe),
        2 => (0usize..64, 0.0..10.0f64, 0.5..3.0f64)
            .prop_map(|(i, lo, w)| Op::Resubscribe(i, lo, lo + w)),
        2 => Just(Op::Rebalance),
    ]
}

/// Everything observable about a dynamic clustering after a scenario:
/// per-rebalance move counts plus bit-exact framework and clustering
/// snapshots (probabilities captured as raw bits).
type Snapshot = (
    Vec<usize>,
    Vec<(Vec<CellId>, Vec<usize>, u64)>,
    Vec<(Vec<usize>, Vec<usize>, u64)>,
);

fn run_scenario(ops: &[Op], k: usize, max_dirty: f64) -> Snapshot {
    let grid = Grid::cube(0.0, 12.0, 1, 12).unwrap();
    let probs = CellProbability::uniform(&grid);
    let mut s = DynamicClustering::new(grid, probs, KMeans::new(KMeansVariant::MacQueen), k)
        .with_max_dirty(max_dirty);
    let mut issued = 0usize;
    let mut moves = Vec::new();
    for op in ops {
        match *op {
            Op::Subscribe(lo, hi) => {
                s.subscribe(Rect::new(vec![Interval::new(lo, hi).unwrap()]));
                issued += 1;
            }
            Op::Unsubscribe(i) if issued > 0 => {
                // Errors (already-dead ids) are themselves part of the
                // behaviour both paths must share, so ignore the result.
                let _ = s.unsubscribe(SubscriptionId(i % issued));
            }
            Op::Resubscribe(i, lo, hi) if issued > 0 => {
                let rect = Rect::new(vec![Interval::new(lo, hi).unwrap()]);
                let _ = s.resubscribe(SubscriptionId(i % issued), rect);
            }
            Op::Unsubscribe(_) | Op::Resubscribe(..) => {}
            Op::Rebalance => moves.push(s.rebalance()),
        }
    }
    moves.push(s.rebalance());
    let hypercells = s
        .framework()
        .hypercells()
        .iter()
        .map(|h| {
            (
                h.cells.clone(),
                h.members.iter().collect(),
                h.prob.to_bits(),
            )
        })
        .collect();
    let groups = s
        .clustering()
        .groups()
        .iter()
        .map(|g| {
            (
                g.hypercells.clone(),
                g.members.iter().collect(),
                g.prob.to_bits(),
            )
        })
        .collect();
    (moves, hypercells, groups)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn incremental_equals_full_rebuild_at_any_thread_count(
        ops in prop::collection::vec(op_strategy(), 1..48),
        k in 1usize..5,
    ) {
        // Force the two maintenance paths: a threshold of +inf accepts
        // every delta incrementally, 0.0 rejects every non-empty delta
        // and falls back to the cold rebuild.
        let serial_inc = parallel::with_threads(1, || run_scenario(&ops, k, f64::INFINITY));
        let serial_full = parallel::with_threads(1, || run_scenario(&ops, k, 0.0));
        let par_inc = parallel::with_threads(8, || run_scenario(&ops, k, f64::INFINITY));
        let par_full = parallel::with_threads(8, || run_scenario(&ops, k, 0.0));
        // Incremental maintenance is invisible in results...
        prop_assert_eq!(&serial_inc, &serial_full);
        // ...and so is the thread count, on either path.
        prop_assert_eq!(&par_inc, &serial_inc);
        prop_assert_eq!(&par_full, &serial_full);
    }
}
