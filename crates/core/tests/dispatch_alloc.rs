//! Proves the compiled dispatch path performs ZERO heap allocations
//! per event in steady state.
//!
//! A counting global allocator tallies allocations on the measuring
//! thread only (other threads — e.g. the libtest harness — are
//! invisible to the counter). After one warm-up pass grows the scratch
//! buffers to their high-water mark, re-running the whole event stream
//! through `DispatchPlan::serve`, `DispatchPlan::dispatch` and
//! `NoLossDispatchPlan::match_event` must not allocate at all.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use geometry::{Grid, Interval, Point, Rect};
use pubsub_core::{
    BatchScratch, BitSet, CellProbability, ClusteringAlgorithm, Delivery, DispatchPlan,
    DispatchScratch, GridFramework, GridMatcher, KMeans, KMeansVariant, NoLossClustering,
    NoLossConfig, NoLossDispatchPlan,
};
use rand::prelude::*;

struct CountingAllocator;

thread_local! {
    // `const` init: no lazy-init allocation inside the allocator itself.
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        COUNTING.with(|c| {
            if c.get() {
                ALLOCS.with(|a| a.set(a.get() + 1));
            }
        });
        // SAFETY: forwards the unmodified layout to the system
        // allocator, which upholds the `GlobalAlloc` contract for us.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was returned by `System.alloc`/`System.realloc`
        // (every other method forwards there) with this same `layout`.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        COUNTING.with(|c| {
            if c.get() {
                ALLOCS.with(|a| a.set(a.get() + 1));
            }
        });
        // SAFETY: `ptr` came from this allocator with `layout`, and the
        // caller guarantees `new_size` is valid per `GlobalAlloc`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Runs `f` with allocation counting enabled on this thread and
/// returns how many heap allocations (alloc + realloc) it performed.
fn count_allocs(f: impl FnOnce()) -> u64 {
    ALLOCS.with(|a| a.set(0));
    COUNTING.with(|c| c.set(true));
    f();
    COUNTING.with(|c| c.set(false));
    ALLOCS.with(|a| a.get())
}

fn random_rect(rng: &mut StdRng) -> Rect {
    let lo = rng.gen_range(0.0..0.95);
    let width = rng.gen_range(0.01..0.05);
    Rect::new(vec![Interval::new(lo, (lo + width).min(1.0)).unwrap()])
}

#[test]
fn steady_state_dispatch_allocates_nothing() {
    let mut rng = StdRng::seed_from_u64(2002);
    let subs: Vec<Rect> = (0..800).map(|_| random_rect(&mut rng)).collect();
    let grid = Grid::cube(0.0, 1.0, 1, 512).unwrap();
    let probs = CellProbability::uniform(&grid);
    let fw = GridFramework::build(grid, &subs, &probs, Some(400));
    let clustering = KMeans::new(KMeansVariant::MacQueen).cluster(&fw, 12);
    let plan = DispatchPlan::compile(&fw, &clustering)
        .with_threshold(0.15)
        .with_subscriptions(&subs);
    let matcher = GridMatcher::new(&fw, &clustering).with_threshold(0.15);

    // Off-grid points exercise the unicast fallback too.
    let events: Vec<Point> = (0..2_000)
        .map(|_| Point::new(vec![rng.gen_range(-0.05..1.05)]))
        .collect();
    let interested: Vec<BitSet> = events
        .iter()
        .map(|p| {
            BitSet::from_members(
                subs.len(),
                subs.iter()
                    .enumerate()
                    .filter(|(_, r)| r.contains(p))
                    .map(|(i, _)| i),
            )
        })
        .collect();

    // Warm-up: every buffer reaches its high-water mark, and the plan
    // must agree with the reference matcher on every event.
    let mut scratch = DispatchScratch::new();
    for (p, set) in events.iter().zip(&interested) {
        let expect = matcher.match_event(p, set);
        assert_eq!(plan.dispatch(p, set), expect);
        assert_eq!(plan.serve(p, &mut scratch), expect);
    }

    let allocs = count_allocs(|| {
        for (p, set) in events.iter().zip(&interested) {
            std::hint::black_box(plan.dispatch(p, set));
            std::hint::black_box(plan.serve(p, &mut scratch));
        }
    });
    assert_eq!(
        allocs,
        0,
        "steady-state dispatch performed {allocs} heap allocations over {} events",
        events.len()
    );
}

#[test]
fn steady_state_batched_dispatch_allocates_nothing() {
    let mut rng = StdRng::seed_from_u64(2002);
    let subs: Vec<Rect> = (0..800).map(|_| random_rect(&mut rng)).collect();
    let grid = Grid::cube(0.0, 1.0, 1, 512).unwrap();
    let probs = CellProbability::uniform(&grid);
    let fw = GridFramework::build(grid, &subs, &probs, Some(400));
    let clustering = KMeans::new(KMeansVariant::MacQueen).cluster(&fw, 12);
    let plan = DispatchPlan::compile(&fw, &clustering)
        .with_threshold(0.15)
        .with_subscriptions(&subs);

    // Off-grid points exercise the NO_SLOT bucket (R-tree fallback) too.
    let events: Vec<Point> = (0..2_000)
        .map(|_| Point::new(vec![rng.gen_range(-0.05..1.05)]))
        .collect();
    let interested: Vec<BitSet> = events
        .iter()
        .map(|p| {
            BitSet::from_members(
                subs.len(),
                subs.iter()
                    .enumerate()
                    .filter(|(_, r)| r.contains(p))
                    .map(|(i, _)| i),
            )
        })
        .collect();
    const BATCH: usize = 256;

    // Warm-up pass: buffers reach their high-water mark, and the
    // batched kernels must agree with the scalar paths event by event.
    let mut scalar = DispatchScratch::new();
    let mut scratch = BatchScratch::new();
    let mut out: Vec<Delivery> = Vec::with_capacity(events.len());
    let run_batches = |scratch: &mut BatchScratch, out: &mut Vec<Delivery>, served: bool| {
        out.clear();
        let mut start = 0;
        while start < events.len() {
            let end = (start + BATCH).min(events.len());
            if served {
                plan.serve_batch(start..end, |e| &events[e], scratch, out);
            } else {
                plan.dispatch_batch(start..end, |e| &events[e], |e| &interested[e], scratch, out);
            }
            start = end;
        }
    };
    run_batches(&mut scratch, &mut out, true);
    for (e, p) in events.iter().enumerate() {
        assert_eq!(out[e], plan.serve(p, &mut scalar), "serve_batch event {e}");
    }
    run_batches(&mut scratch, &mut out, false);
    for (e, (p, set)) in events.iter().zip(&interested).enumerate() {
        assert_eq!(out[e], plan.dispatch(p, set), "dispatch_batch event {e}");
    }

    let allocs = count_allocs(|| {
        run_batches(&mut scratch, &mut out, true);
        run_batches(&mut scratch, &mut out, false);
    });
    assert_eq!(
        allocs,
        0,
        "steady-state batched dispatch performed {allocs} heap allocations over {} events",
        2 * events.len()
    );
}

#[test]
fn steady_state_noloss_match_allocates_nothing() {
    let mut rng = StdRng::seed_from_u64(77);
    let subs: Vec<Rect> = (0..150).map(|_| random_rect(&mut rng)).collect();
    let sample: Vec<Point> = (0..200)
        .map(|_| Point::new(vec![rng.gen_range(0.0..1.0)]))
        .collect();
    let cfg = NoLossConfig {
        max_rects: 200,
        iterations: 3,
        max_candidates_per_round: 50_000,
    };
    let nl = NoLossClustering::build(&subs, &sample, &cfg, 20);
    assert!(nl.num_groups() > 0);
    let plan = NoLossDispatchPlan::compile(&nl);

    let events: Vec<Point> = (0..2_000)
        .map(|_| Point::new(vec![rng.gen_range(-0.05..1.05)]))
        .collect();
    for p in &events {
        assert_eq!(plan.match_event(p), nl.match_event(p));
    }

    let allocs = count_allocs(|| {
        for p in &events {
            std::hint::black_box(nl.match_event(p));
            std::hint::black_box(plan.match_event(p));
        }
    });
    assert_eq!(
        allocs, 0,
        "steady-state No-Loss matching performed {allocs} heap allocations"
    );
}
