//! Edge-case coverage for the clustering core: degenerate populations,
//! extreme K values, single-subscriber systems.

use geometry::{Grid, Interval, Point, Rect};
use pubsub_core::{
    BitSet, CellProbability, ClusteringAlgorithm, CountingMatcher, Delivery, DynamicClustering,
    GridFramework, GridMatcher, KMeans, KMeansVariant, MstClustering, NoLossClustering,
    NoLossConfig, PairsStrategy, PairwiseGrouping, SubscriptionIndex,
};

fn rect1(lo: f64, hi: f64) -> Rect {
    Rect::new(vec![Interval::new(lo, hi).unwrap()])
}

fn grid() -> Grid {
    Grid::cube(0.0, 10.0, 1, 10).unwrap()
}

#[test]
fn single_subscription_system() {
    let subs = vec![rect1(2.0, 6.0)];
    let fw = GridFramework::build(grid(), &subs, &CellProbability::uniform(&grid()), None);
    assert_eq!(fw.hypercells().len(), 1);
    for alg in [
        Box::new(KMeans::new(KMeansVariant::MacQueen)) as Box<dyn ClusteringAlgorithm>,
        Box::new(KMeans::new(KMeansVariant::Forgy)),
        Box::new(MstClustering::new()),
        Box::new(PairwiseGrouping::new(PairsStrategy::Exact)),
    ] {
        let c = alg.cluster(&fw, 5);
        assert_eq!(c.num_groups(), 1, "{}", alg.name());
        assert_eq!(c.total_expected_waste(&fw), 0.0, "{}", alg.name());
    }
}

#[test]
fn identical_subscriptions_collapse_to_one_hypercell() {
    let subs = vec![rect1(0.0, 10.0); 50];
    let fw = GridFramework::build(grid(), &subs, &CellProbability::uniform(&grid()), None);
    assert_eq!(fw.hypercells().len(), 1);
    assert_eq!(fw.hypercells()[0].members.count(), 50);
}

#[test]
fn k_zero_is_clamped_to_one() {
    let subs = vec![rect1(0.0, 4.0), rect1(6.0, 10.0)];
    let fw = GridFramework::build(grid(), &subs, &CellProbability::uniform(&grid()), None);
    for alg in [
        Box::new(KMeans::new(KMeansVariant::MacQueen)) as Box<dyn ClusteringAlgorithm>,
        Box::new(MstClustering::new()),
        Box::new(PairwiseGrouping::new(PairsStrategy::Exact)),
    ] {
        let c = alg.cluster(&fw, 0);
        assert_eq!(c.num_groups(), 1, "{}", alg.name());
    }
}

#[test]
fn disjoint_subscribers_never_share_groups_at_sufficient_k() {
    // Ten pairwise-disjoint unit intervals: at K = 10 every algorithm
    // should isolate them (zero waste is achievable).
    let subs: Vec<Rect> = (0..10).map(|i| rect1(i as f64, i as f64 + 1.0)).collect();
    let fw = GridFramework::build(grid(), &subs, &CellProbability::uniform(&grid()), None);
    for alg in [
        Box::new(KMeans::new(KMeansVariant::Forgy)) as Box<dyn ClusteringAlgorithm>,
        Box::new(MstClustering::new()),
        Box::new(PairwiseGrouping::new(PairsStrategy::Exact)),
    ] {
        let c = alg.cluster(&fw, 10);
        assert_eq!(
            c.total_expected_waste(&fw),
            0.0,
            "{} wasted on disjoint input",
            alg.name()
        );
    }
}

#[test]
fn matcher_with_unmatched_universe() {
    // Subscriptions exist but the event lands where nobody subscribed.
    let subs = vec![rect1(0.0, 2.0)];
    let fw = GridFramework::build(grid(), &subs, &CellProbability::uniform(&grid()), None);
    let c = KMeans::new(KMeansVariant::Forgy).cluster(&fw, 1);
    let m = GridMatcher::new(&fw, &c);
    let interested = BitSet::new(1);
    assert_eq!(
        m.match_event(&Point::new(vec![9.0]), &interested),
        Delivery::Unicast
    );
}

#[test]
fn noloss_k_zero_keeps_nothing() {
    let subs = vec![rect1(0.0, 5.0), rect1(3.0, 8.0)];
    let nl = NoLossClustering::build(
        &subs,
        &[],
        &NoLossConfig {
            max_rects: 10,
            iterations: 1,
            max_candidates_per_round: 100,
        },
        0,
    );
    assert_eq!(nl.num_groups(), 0);
    assert_eq!(nl.match_event(&Point::new(vec![4.0])), None);
}

#[test]
fn noloss_zero_iterations_uses_raw_rectangles() {
    let subs = vec![rect1(0.0, 5.0), rect1(3.0, 8.0)];
    let nl = NoLossClustering::build(
        &subs,
        &[],
        &NoLossConfig {
            max_rects: 10,
            iterations: 0,
            max_candidates_per_round: 100,
        },
        10,
    );
    // No intersections generated: the two raw rectangles are the pool.
    assert_eq!(nl.num_groups(), 2);
}

#[test]
fn dynamic_clustering_all_unsubscribed() {
    let mut d = DynamicClustering::new(
        grid(),
        CellProbability::uniform(&grid()),
        KMeans::new(KMeansVariant::MacQueen),
        3,
    );
    let a = d.subscribe(rect1(0.0, 5.0));
    let b = d.subscribe(rect1(5.0, 10.0));
    d.rebalance();
    d.unsubscribe(a).unwrap();
    d.unsubscribe(b).unwrap();
    d.rebalance();
    assert_eq!(d.num_subscriptions(), 0);
    assert_eq!(d.clustering().num_groups(), 0);
    assert_eq!(d.group_of_point(&Point::new(vec![2.0])), None);
}

#[test]
fn matchers_on_universe_rectangles() {
    // All-space subscriptions: every event matches everything.
    let subs = vec![Rect::all(2); 5];
    let idx = SubscriptionIndex::build(&subs);
    let cnt = CountingMatcher::build(&subs);
    let p = Point::new(vec![123.0, -456.0]);
    assert_eq!(idx.matching(&p), vec![0, 1, 2, 3, 4]);
    assert_eq!(cnt.matching(&p), vec![0, 1, 2, 3, 4]);
}

#[test]
fn bitset_zero_universe() {
    let a = BitSet::new(0);
    let b = BitSet::new(0);
    assert_eq!(a.count(), 0);
    assert!(a.is_empty());
    assert_eq!(a.difference_count(&b), 0);
    assert!(a.is_subset(&b));
    assert_eq!(a.iter().count(), 0);
}

#[test]
fn approx_pairs_with_two_cells() {
    // The secretary scan must behave with the minimum possible pool.
    let subs = vec![rect1(0.0, 4.0), rect1(6.0, 10.0)];
    let fw = GridFramework::build(grid(), &subs, &CellProbability::uniform(&grid()), None);
    assert_eq!(fw.hypercells().len(), 2);
    let c = PairwiseGrouping::new(PairsStrategy::Approximate { seed: 1 }).cluster(&fw, 1);
    assert_eq!(c.num_groups(), 1);
}

#[test]
fn outlier_removal_of_everything_but_one() {
    let subs: Vec<Rect> = (0..5)
        .map(|i| rect1(i as f64 * 2.0, i as f64 * 2.0 + 2.0))
        .collect();
    let fw = GridFramework::build(grid(), &subs, &CellProbability::uniform(&grid()), None);
    let filtered = fw.remove_outliers(1.0);
    // Dropping 100% still rounds to the full count; framework survives.
    assert!(filtered.hypercells().len() <= fw.hypercells().len());
}
