//! Real-thread stress of the epoch-swapped snapshot cell.
//!
//! The `snapshot::` unit tests run under Miri with tiny constants;
//! these suites turn the same invariants loose on native threads at
//! stress counts, and are the snapshot half of the nightly
//! ThreadSanitizer job (`-Zsanitizer=thread` instruments exactly this
//! kind of reader/publisher race).
//!
//! Invariant under test: every `(epoch, value)` pair a reader observes
//! was actually published — the publisher only ever publishes
//! `Arc::new(i)` at epoch `i`, so a mismatch means a torn swap.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use pubsub_core::SnapshotCell;

#[test]
fn reader_storm_never_observes_torn_pairs() {
    const READERS: usize = 6;
    const SWAPS: u64 = 2_000;
    const READS_PER_READER: u64 = 20_000;

    let cell = SnapshotCell::new(Arc::new(0u64));
    std::thread::scope(|scope| {
        for _ in 0..READERS {
            scope.spawn(|| {
                let mut reader = cell.reader();
                let mut last_epoch = 0;
                for _ in 0..READS_PER_READER {
                    let value = **reader.current();
                    let epoch = reader.cached_epoch();
                    assert_eq!(value, epoch, "torn snapshot");
                    assert!(epoch >= last_epoch, "epoch went backwards");
                    last_epoch = epoch;
                }
            });
        }
        scope.spawn(|| {
            for i in 1..=SWAPS {
                cell.publish(Arc::new(i));
            }
        });
    });
    assert_eq!(cell.epoch(), SWAPS);
    assert_eq!(*cell.load(), SWAPS);
}

#[test]
fn uncached_loads_race_the_publisher_consistently() {
    const SWAPS: u64 = 4_000;

    let cell = SnapshotCell::new(Arc::new(0u64));
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                let mut last = 0;
                while !done.load(Ordering::Acquire) {
                    let (value, epoch) = cell.load_with_epoch();
                    assert_eq!(*value, epoch, "load_with_epoch paired a stale value");
                    assert!(epoch >= last, "epoch went backwards");
                    last = epoch;
                }
            });
        }
        scope.spawn(|| {
            for i in 1..=SWAPS {
                cell.publish(Arc::new(i));
            }
            done.store(true, Ordering::Release);
        });
    });
    assert_eq!(cell.epoch(), SWAPS);
}

#[test]
fn concurrent_publishers_account_for_every_swap() {
    const PUBLISHERS: u64 = 4;
    const SWAPS_EACH: u64 = 1_000;

    // Publishers race each other and a pool of readers; epochs must
    // still count every publish exactly once and readers must never
    // see the epoch move backwards.
    let cell = SnapshotCell::new(Arc::new(0u64));
    let max_seen = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for p in 0..PUBLISHERS {
            let cell = &cell;
            scope.spawn(move || {
                for i in 0..SWAPS_EACH {
                    cell.publish(Arc::new(p * SWAPS_EACH + i));
                }
            });
        }
        for _ in 0..2 {
            scope.spawn(|| {
                let mut reader = cell.reader();
                let mut last = 0;
                for _ in 0..10_000 {
                    let _value = **reader.current();
                    let epoch = reader.cached_epoch();
                    assert!(epoch >= last, "epoch went backwards");
                    last = epoch;
                    max_seen.fetch_max(epoch, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(cell.epoch(), PUBLISHERS * SWAPS_EACH);
    assert!(max_seen.load(Ordering::Relaxed) <= PUBLISHERS * SWAPS_EACH);
    // The final value is whichever publisher's store landed last; it
    // must be one that was actually submitted.
    assert!(*cell.load() < PUBLISHERS * SWAPS_EACH);
}

#[test]
fn in_flight_snapshots_outlive_heavy_churn() {
    let cell = SnapshotCell::new(Arc::new(vec![0u64; 512]));
    let held = cell.load();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            for i in 1..=500u64 {
                cell.publish(Arc::new(vec![i; 512]));
            }
        });
        scope.spawn(|| {
            for _ in 0..500 {
                // Dropping freshly loaded Arcs races the publisher's
                // store of the replacement — the refcount traffic is
                // what tsan watches here.
                drop(cell.load());
            }
        });
    });
    assert!(held.iter().all(|&x| x == 0), "held snapshot mutated");
    assert!(cell.load().iter().all(|&x| x == 500));
}
