//! Subscription aggregation is a pure optimization: serving through
//! the class-universe [`AggregatePlan`] produces decisions and
//! concrete interested sets bit-identical to the unaggregated
//! [`DispatchPlan`] over the expanded population — for all five grid
//! algorithms, scalar and chunked, at 1 and 8 threads — and one shard
//! of a [`ShardedAggregate`] is identical to the unsharded plan. The
//! No-Loss analogue clusters class rectangles with multiplicities and
//! must agree with the concrete build on every region match. The
//! always-on service path is pinned by `service_path_agrees_with_the
//! _aggregated_plan` below.

use std::sync::Arc;

use geometry::{Grid, Interval, Point, Rect};
use proptest::prelude::*;
use pubsub_core::{
    parallel, AggregatePlan, AggregateScratch, Aggregation, BrokerService, CellProbability,
    ClusteringAlgorithm, Delivery, DispatchPlan, DispatchScratch, DynamicClustering, GridFramework,
    KMeans, KMeansVariant, MstClustering, NoLossClustering, NoLossConfig, PairsStrategy,
    PairwiseGrouping, ServiceConfig, ShardedAggregate,
};

/// Bounded random interval inside (0, 20].
fn interval_strategy() -> impl Strategy<Value = Interval> {
    (0.0..20.0f64, 0.0..20.0f64).prop_map(|(a, b)| Interval::from_unordered(a, b))
}

fn rect_strategy() -> impl Strategy<Value = Rect> {
    prop::collection::vec(interval_strategy(), 2).prop_map(Rect::new)
}

/// A near-duplicate population: a small template pool, each slot
/// picking one template — so aggregation genuinely collapses slots.
fn population_strategy() -> impl Strategy<Value = Vec<Rect>> {
    (
        prop::collection::vec(rect_strategy(), 1..8),
        prop::collection::vec(0usize..64, 1..40),
    )
        .prop_map(|(pool, picks)| {
            picks
                .into_iter()
                .map(|i| pool[i % pool.len()].clone())
                .collect()
        })
}

/// Points both on- and off-grid (the grid covers (0, 20]).
fn point_strategy() -> impl Strategy<Value = Point> {
    prop::collection::vec(-1.0..22.0f64, 2).prop_map(Point::new)
}

/// All five grid clustering algorithms of the paper.
fn algorithms() -> Vec<Box<dyn ClusteringAlgorithm>> {
    vec![
        Box::new(KMeans::new(KMeansVariant::MacQueen)),
        Box::new(KMeans::new(KMeansVariant::Forgy)),
        Box::new(PairwiseGrouping::new(PairsStrategy::Exact)),
        Box::new(PairwiseGrouping::new(PairsStrategy::Approximate {
            seed: 9,
        })),
        Box::new(MstClustering::new()),
    ]
}

fn grid() -> Grid {
    Grid::cube(0.0, 20.0, 2, 10).unwrap()
}

/// Serves every point through the aggregated plan under a pinned
/// thread count via the fixed-chunk decomposition the sim uses,
/// collecting `(decision, interested)` per event.
fn chunked_aggregated(
    plan: &AggregatePlan,
    points: &[Point],
    threads: usize,
) -> Vec<(Delivery, Vec<usize>)> {
    parallel::with_threads(threads, || {
        parallel::par_chunks(points.len(), 8, |range| {
            let mut scratch = AggregateScratch::new();
            let mut out = Vec::with_capacity(range.len());
            for e in range {
                let d = plan.serve(&points[e], &mut scratch);
                out.push((d, scratch.interested().to_vec()));
            }
            out
        })
        .into_iter()
        .flatten()
        .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The aggregated serve path is bit-identical to the concrete
    /// serve path — decisions AND interested sets — for all five grid
    /// algorithms, scalar and chunked at 1 and 8 threads.
    #[test]
    fn aggregated_serve_equals_concrete_for_all_algorithms(
        subs in population_strategy(),
        points in prop::collection::vec(point_strategy(), 1..30),
        threshold in 0.0..1.0f64,
        k in 1usize..6,
    ) {
        let grid = grid();
        let probs = CellProbability::uniform(&grid);
        let agg = Arc::new(Aggregation::build(&subs));
        let concrete_fw = GridFramework::build(grid.clone(), &subs, &probs, None);
        let class_fw = agg.build_framework(grid.clone(), &probs, None);
        for alg in algorithms() {
            let concrete_clustering = alg.cluster(&concrete_fw, k);
            let concrete_plan = DispatchPlan::compile(&concrete_fw, &concrete_clustering)
                .with_threshold(threshold)
                .with_subscriptions(&subs);
            let class_clustering = alg.cluster(&class_fw, k);
            let agg_plan = AggregatePlan::compile(
                &class_fw,
                &class_clustering,
                threshold,
                agg.clone(),
            );
            let mut cs = DispatchScratch::new();
            let mut asr = AggregateScratch::new();
            let reference: Vec<(Delivery, Vec<usize>)> = points
                .iter()
                .map(|p| {
                    let d = concrete_plan.serve(p, &mut cs);
                    (d, cs.interested().to_vec())
                })
                .collect();
            for (p, (d_ref, interested_ref)) in points.iter().zip(&reference) {
                let d = agg_plan.serve(p, &mut asr);
                prop_assert_eq!(&d, d_ref, "{}: decision diverged at {:?}", alg.name(), p);
                prop_assert_eq!(
                    asr.interested(),
                    &interested_ref[..],
                    "{}: interested set diverged at {:?}",
                    alg.name(),
                    p
                );
            }
            for threads in [1usize, 8] {
                let chunked = chunked_aggregated(&agg_plan, &points, threads);
                prop_assert_eq!(
                    &chunked,
                    &reference,
                    "{} diverged at {} thread(s)",
                    alg.name(),
                    threads
                );
            }
        }
    }

    /// One shard serves bit-identically to the unsharded plan, and any
    /// shard count keeps interested sets exact against brute force.
    #[test]
    fn sharded_serves_match_unsharded_and_brute_force(
        subs in population_strategy(),
        points in prop::collection::vec(point_strategy(), 1..30),
        threshold in 0.0..1.0f64,
        shards in 2usize..6,
    ) {
        let grid = grid();
        let agg = Arc::new(Aggregation::build(&subs));
        let algorithm = KMeans::new(KMeansVariant::MacQueen);
        let class_fw = agg.build_framework(grid.clone(), &CellProbability::uniform(&grid), None);
        let clustering = algorithm.cluster(&class_fw, 4);
        let plan = AggregatePlan::compile(&class_fw, &clustering, threshold, agg.clone());
        let one = ShardedAggregate::build_with_shards(
            &grid, agg.clone(), CellProbability::uniform, &algorithm, 4, threshold, 1,
        );
        let many = ShardedAggregate::build_with_shards(
            &grid, agg.clone(), CellProbability::uniform, &algorithm, 4, threshold, shards,
        );
        let mut a = AggregateScratch::new();
        let mut b = AggregateScratch::new();
        for p in &points {
            let d_plan = plan.serve(p, &mut a);
            let d_one = one.serve(p, &mut b);
            prop_assert_eq!(d_plan, d_one, "one-shard decision diverged at {:?}", p);
            prop_assert_eq!(a.interested(), b.interested(), "one-shard set diverged at {:?}", p);
            let _ = many.serve(p, &mut b);
            let brute: Vec<usize> = subs
                .iter()
                .enumerate()
                .filter(|(_, r)| r.contains(p))
                .map(|(i, _)| i)
                .collect();
            prop_assert_eq!(
                b.interested(),
                &brute[..],
                "{}-shard interested set diverged at {:?}",
                shards,
                p
            );
        }
    }

    /// The parallel shard fan-out is a pure scheduling change: building
    /// a sharded aggregate and churning it (adds and removals) under 1
    /// and 8 worker threads yields bit-identical decisions and
    /// interested sets at every shard count.
    #[test]
    fn parallel_build_and_churn_match_serial(
        subs in population_strategy(),
        added in prop::collection::vec(rect_strategy(), 1..6),
        points in prop::collection::vec(point_strategy(), 1..20),
        threshold in 0.0..1.0f64,
    ) {
        let grid = grid();
        let algorithm = KMeans::new(KMeansVariant::MacQueen);
        let removed: Vec<usize> = (0..subs.len()).step_by(4).take(3).collect();
        for shards in [1usize, 3, 8] {
            let run = |threads: usize| {
                parallel::with_threads(threads, || {
                    let agg = Arc::new(Aggregation::build(&subs));
                    let mut sharded = ShardedAggregate::build_with_shards(
                        &grid, agg, CellProbability::uniform, &algorithm, 4, threshold, shards,
                    );
                    let report = sharded.apply_churn(&added, &removed, &algorithm);
                    let mut scratch = AggregateScratch::new();
                    let served: Vec<(Delivery, Vec<usize>)> = points
                        .iter()
                        .map(|p| {
                            let d = sharded.serve(p, &mut scratch);
                            (d, scratch.interested().to_vec())
                        })
                        .collect();
                    (sharded.shard_dim(), report.shards_reclustered, served)
                })
            };
            let serial = run(1);
            let par = run(8);
            prop_assert_eq!(serial, par, "threads 1 vs 8 diverged at {} shard(s)", shards);
        }
    }

    /// The selectivity-chosen shard axis is reproducible: pinning
    /// `shard_dim` to the axis the auto heuristic picked rebuilds the
    /// identical aggregate, and *every* forced axis still serves exact
    /// interested sets against brute force.
    #[test]
    fn forced_shard_axis_matches_auto_and_serves_exact(
        subs in population_strategy(),
        points in prop::collection::vec(point_strategy(), 1..20),
        threshold in 0.0..1.0f64,
        shards in 2usize..6,
    ) {
        let grid = grid();
        let algorithm = KMeans::new(KMeansVariant::MacQueen);
        let agg = Arc::new(Aggregation::build(&subs));
        let auto = ShardedAggregate::build_with_shards(
            &grid, agg.clone(), CellProbability::uniform, &algorithm, 4, threshold, shards,
        );
        let pinned = ShardedAggregate::build_with_shards_on(
            &grid, agg.clone(), CellProbability::uniform, &algorithm, 4, threshold, shards,
            Some(auto.shard_dim()),
        );
        let mut a = AggregateScratch::new();
        let mut b = AggregateScratch::new();
        for p in &points {
            let da = auto.serve(p, &mut a);
            let dp = pinned.serve(p, &mut b);
            prop_assert_eq!(da, dp, "pinned-axis decision diverged at {:?}", p);
            prop_assert_eq!(a.interested(), b.interested(), "pinned-axis set diverged at {:?}", p);
        }
        for dim in 0..grid.dim() {
            let forced = ShardedAggregate::build_with_shards_on(
                &grid, agg.clone(), CellProbability::uniform, &algorithm, 4, threshold, shards,
                Some(dim),
            );
            prop_assert_eq!(forced.shard_dim(), dim);
            for p in &points {
                let _ = forced.serve(p, &mut a);
                let brute: Vec<usize> = subs
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r.contains(p))
                    .map(|(i, _)| i)
                    .collect();
                prop_assert_eq!(
                    a.interested(),
                    &brute[..],
                    "axis {} interested set diverged at {:?}",
                    dim,
                    p
                );
            }
        }
    }

    /// Interleaved add/remove churn under strict re-clustering lands on
    /// the same aggregate a cold rebuild from the churned population
    /// produces: identical decisions and interested sets everywhere.
    #[test]
    fn strict_churn_interleavings_match_cold_rebuild(
        subs in population_strategy(),
        rounds in prop::collection::vec(
            (
                prop::collection::vec(rect_strategy(), 0..4),
                prop::collection::vec(0usize..1000, 0..5),
            ),
            1..4,
        ),
        points in prop::collection::vec(point_strategy(), 1..20),
        threshold in 0.0..1.0f64,
        shards in 1usize..5,
    ) {
        let grid = grid();
        let algorithm = KMeans::new(KMeansVariant::MacQueen);
        let agg = Arc::new(Aggregation::build(&subs));
        let mut sharded = ShardedAggregate::build_with_shards(
            &grid, agg, CellProbability::uniform, &algorithm, 4, threshold, shards,
        )
        .with_strict_recluster(true);
        let mut num_concrete = subs.len();
        let mut alive: Vec<usize> = (0..subs.len()).collect();
        for (adds, removal_picks) in &rounds {
            let mut ids: Vec<usize> = Vec::new();
            for &pick in removal_picks {
                if alive.is_empty() {
                    break;
                }
                ids.push(alive.swap_remove(pick % alive.len()));
            }
            sharded.apply_churn(adds, &ids, &algorithm);
            for _ in adds {
                alive.push(num_concrete);
                num_concrete += 1;
            }
        }
        let cold = ShardedAggregate::build_with_shards_on(
            &grid,
            Arc::new(sharded.aggregation().clone()),
            CellProbability::uniform,
            &algorithm,
            4,
            threshold,
            shards,
            Some(sharded.shard_dim()),
        );
        let mut a = AggregateScratch::new();
        let mut b = AggregateScratch::new();
        for p in &points {
            let dc = sharded.serve(p, &mut a);
            let dd = cold.serve(p, &mut b);
            prop_assert_eq!(dc, dd, "decision diverged from cold rebuild at {:?}", p);
            prop_assert_eq!(
                a.interested(),
                b.interested(),
                "interested set diverged from cold rebuild at {:?}",
                p
            );
        }
    }

    /// No-Loss over aggregated classes: clustering the distinct
    /// rectangles with their multiplicities matches the concrete
    /// build's region structure on every event — same matched-region
    /// rectangle (or both unmatched) for every point.
    #[test]
    fn noloss_aggregated_matches_concrete_regions(
        subs in population_strategy(),
        points in prop::collection::vec(point_strategy(), 1..30),
        k in 1usize..6,
    ) {
        let cfg = NoLossConfig { max_rects: 60, iterations: 2, max_candidates_per_round: 5_000 };
        let sample: Vec<Point> = (0..8)
            .flat_map(|i| (0..8).map(move |j| {
                Point::new(vec![i as f64 * 2.5 + 1.25, j as f64 * 2.5 + 1.25])
            }))
            .collect();
        let concrete = NoLossClustering::build_with_density(
            &subs,
            |rect| sample.iter().filter(|p| rect.contains(p)).count() as f64 / sample.len() as f64,
            &sample,
            &cfg,
            k,
        );
        let agg = Aggregation::build(&subs);
        let classes = agg.class_rects();
        let aggregated = NoLossClustering::build_aggregated(
            &classes, agg.weights(), &sample, &cfg, k,
        );
        for p in &points {
            let c = concrete.match_event(p).map(|r| concrete.regions()[r].rect.clone());
            let a = aggregated.match_event(p).map(|r| aggregated.regions()[r].rect.clone());
            prop_assert_eq!(c, a, "matched regions diverged at {:?}", p);
        }
    }
}

/// The always-on service path (multi-threaded ingest over the
/// concrete plan) agrees with the aggregated plan on every recorded
/// decision and interested count over a static population.
#[test]
fn service_path_agrees_with_the_aggregated_plan() {
    use rand::prelude::*;

    let mut rng = StdRng::seed_from_u64(15);
    let pool: Vec<Rect> = (0..12)
        .map(|_| {
            let lo: f64 = rng.gen_range(0.0..16.0);
            let w: f64 = rng.gen_range(0.5..4.0);
            let lo2: f64 = rng.gen_range(0.0..16.0);
            let w2: f64 = rng.gen_range(0.5..4.0);
            Rect::new(vec![
                Interval::new(lo, (lo + w).min(20.0)).unwrap(),
                Interval::new(lo2, (lo2 + w2).min(20.0)).unwrap(),
            ])
        })
        .collect();
    let subs: Vec<Rect> = (0..200)
        .map(|_| pool[rng.gen_range(0..pool.len())].clone())
        .collect();
    let points: Vec<Point> = (0..300)
        .map(|_| Point::new(vec![rng.gen_range(-1.0..21.0), rng.gen_range(-1.0..21.0)]))
        .collect();

    let grid = grid();
    let probs = CellProbability::uniform(&grid);
    let algorithm = KMeans::new(KMeansVariant::MacQueen);
    let threshold = 0.3;

    // Aggregated side. The service's cold rebuild seeds K-means
    // round-robin, so seed the class clustering the same way — the
    // weighted class framework has the same hyper-cell order as the
    // concrete one, making the partitions (and group ids) identical.
    let agg = Arc::new(Aggregation::build(&subs));
    let class_fw = agg.build_framework(grid.clone(), &probs, None);
    let l = class_fw.hypercells().len();
    let k = 8usize.min(l);
    let seed: Vec<usize> = (0..l).map(|h| h % k).collect();
    let (clustering, _) = algorithm.cluster_seeded(&class_fw, k, &seed);
    let agg_plan = AggregatePlan::compile(&class_fw, &clustering, threshold, agg.clone());

    // Service side: static population, multi-threaded ingest.
    let mut dynamic = DynamicClustering::new(grid, probs, algorithm, 8);
    for r in &subs {
        dynamic.subscribe(r.clone());
    }
    dynamic.rebalance();
    let service = BrokerService::start(
        dynamic,
        ServiceConfig {
            ingest_threads: 2,
            threshold,
            ..ServiceConfig::default()
        },
    )
    .expect("initial plan compiles");
    for p in &points {
        service.offer(p.clone());
    }
    service.drain();
    let (report, _) = service.shutdown();
    assert_eq!(
        report.records.len(),
        points.len(),
        "nothing shed under Block"
    );

    let mut scratch = AggregateScratch::new();
    for record in &report.records {
        let p = &points[record.id as usize];
        let d = agg_plan.serve(p, &mut scratch);
        assert_eq!(
            record.decision, d,
            "decision diverged at event {}",
            record.id
        );
        assert_eq!(
            record.interested as usize,
            scratch.interested().len(),
            "interested count diverged at event {}",
            record.id
        );
    }
}
