//! Property-based tests of the core clustering data structures.

use geometry::{Grid, Interval, Rect};
use proptest::prelude::*;
use pubsub_core::{
    expected_waste, BitSet, CellProbability, ClusteringAlgorithm, GridFramework, KMeans,
    KMeansVariant, MstClustering, PairsStrategy, PairwiseGrouping,
};

fn bitset_strategy(universe: usize) -> impl Strategy<Value = BitSet> {
    prop::collection::vec(0..universe, 0..universe)
        .prop_map(move |v| BitSet::from_members(universe, v))
}

proptest! {
    // ----- BitSet algebra -----

    #[test]
    fn bitset_counts_are_consistent(a in bitset_strategy(150), b in bitset_strategy(150)) {
        // |A| = |A∩B| + |A\B| and |A∪B| = |A| + |B| - |A∩B|.
        prop_assert_eq!(
            a.count(),
            a.intersection_count(&b) + a.difference_count(&b)
        );
        prop_assert_eq!(
            a.union_count(&b),
            a.count() + b.count() - a.intersection_count(&b)
        );
    }

    #[test]
    fn bitset_union_with_is_union_count(a in bitset_strategy(150), b in bitset_strategy(150)) {
        let mut u = a.clone();
        u.union_with(&b);
        prop_assert_eq!(u.count(), a.union_count(&b));
        prop_assert!(a.is_subset(&u));
        prop_assert!(b.is_subset(&u));
    }

    #[test]
    fn bitset_iter_round_trips(a in bitset_strategy(150)) {
        let rebuilt = BitSet::from_members(150, a.iter());
        prop_assert_eq!(rebuilt, a);
    }

    #[test]
    fn bitset_subset_iff_no_difference(a in bitset_strategy(80), b in bitset_strategy(80)) {
        prop_assert_eq!(a.is_subset(&b), a.difference_count(&b) == 0);
    }

    #[test]
    fn waste_counts_equal_two_call_path(a in bitset_strategy(150), b in bitset_strategy(150)) {
        // The fused single-pass kernel must agree with the two
        // independent directed-difference scans it replaced.
        prop_assert_eq!(
            a.waste_counts(&b),
            (a.difference_count(&b), b.difference_count(&a))
        );
    }

    // ----- Expected-waste distance -----

    #[test]
    fn waste_axioms(
        a in bitset_strategy(100),
        b in bitset_strategy(100),
        pa in 0.0..1.0f64,
        pb in 0.0..1.0f64,
    ) {
        let d = expected_waste(pa, &a, pb, &b);
        prop_assert!(d >= 0.0);
        // Symmetry.
        prop_assert_eq!(d, expected_waste(pb, &b, pa, &a));
        // Identity of indiscernibles (one direction).
        prop_assert_eq!(expected_waste(pa, &a, pb, &a), 0.0);
    }

    #[test]
    fn waste_scales_with_probability(
        a in bitset_strategy(100),
        b in bitset_strategy(100),
        p in 0.01..1.0f64,
    ) {
        // d is linear in the probability masses.
        let d1 = expected_waste(p, &a, p, &b);
        let d2 = expected_waste(2.0 * p, &a, 2.0 * p, &b);
        prop_assert!((d2 - 2.0 * d1).abs() < 1e-9);
    }

    // ----- Framework invariants -----

    #[test]
    fn framework_membership_matches_rasterization(
        rects in prop::collection::vec(
            (0.0..18.0f64, 0.5..6.0f64).prop_map(|(lo, len)| {
                Rect::new(vec![Interval::new(lo, (lo + len).min(20.0)).unwrap()])
            }),
            1..12,
        ),
    ) {
        let grid = Grid::cube(0.0, 20.0, 1, 10).unwrap();
        let probs = CellProbability::uniform(&grid);
        let fw = GridFramework::build(grid.clone(), &rects, &probs, None);
        // Every hyper-cell's membership equals the set of rects
        // overlapping each of its cells.
        for hc in fw.hypercells() {
            for &cell in &hc.cells {
                let cell_rect = grid.cell_rect(cell);
                for (i, r) in rects.iter().enumerate() {
                    prop_assert_eq!(
                        hc.members.contains(i),
                        r.intersects(&cell_rect),
                        "cell {:?} rect {}", cell, r
                    );
                }
            }
        }
        // Hyper-cells partition the non-empty cells: distinct
        // hyper-cells have distinct membership vectors.
        for (x, a) in fw.hypercells().iter().enumerate() {
            for b in fw.hypercells().iter().skip(x + 1) {
                prop_assert!(a.members != b.members, "duplicate membership not merged");
            }
        }
    }

    #[test]
    fn framework_probability_is_conserved(
        rects in prop::collection::vec(
            (0.0..18.0f64, 0.5..6.0f64).prop_map(|(lo, len)| {
                Rect::new(vec![Interval::new(lo, (lo + len).min(20.0)).unwrap()])
            }),
            1..10,
        ),
    ) {
        let grid = Grid::cube(0.0, 20.0, 1, 10).unwrap();
        let probs = CellProbability::uniform(&grid);
        let fw = GridFramework::build(grid.clone(), &rects, &probs, None);
        // Total hyper-cell probability == sum of the probabilities of
        // all non-empty cells.
        let total: f64 = fw.hypercells().iter().map(|h| h.prob).sum();
        let expected: f64 = grid
            .iter()
            .filter(|&c| {
                let cr = grid.cell_rect(c);
                rects.iter().any(|r| r.intersects(&cr))
            })
            .map(|c| probs.prob(c))
            .sum();
        prop_assert!((total - expected).abs() < 1e-9, "{total} vs {expected}");
    }

    // ----- Cross-algorithm waste sanity -----

    #[test]
    fn all_algorithms_zero_waste_at_full_k(
        rects in prop::collection::vec(
            (0.0..18.0f64, 0.5..6.0f64).prop_map(|(lo, len)| {
                Rect::new(vec![Interval::new(lo, (lo + len).min(20.0)).unwrap()])
            }),
            1..10,
        ),
    ) {
        let grid = Grid::cube(0.0, 20.0, 1, 10).unwrap();
        let probs = CellProbability::uniform(&grid);
        let fw = GridFramework::build(grid, &rects, &probs, None);
        let l = fw.hypercells().len();
        let algs: Vec<Box<dyn ClusteringAlgorithm>> = vec![
            Box::new(KMeans::new(KMeansVariant::MacQueen)),
            Box::new(KMeans::new(KMeansVariant::Forgy)),
            Box::new(MstClustering::new()),
            Box::new(PairwiseGrouping::new(PairsStrategy::Exact)),
        ];
        for alg in &algs {
            let c = alg.cluster(&fw, l);
            prop_assert_eq!(
                c.total_expected_waste(&fw),
                0.0,
                "{} wasted at K = l",
                alg.name()
            );
        }
    }
}

// ----- Dynamic clustering churn -----

/// One random churn operation against a `DynamicClustering`.
#[derive(Debug, Clone)]
enum ChurnOp {
    Subscribe(f64, f64),
    /// Unsubscribe the id at this index among issued ids (mod count).
    Unsubscribe(usize),
    /// Resubscribe the id at this index to a new interval.
    Resubscribe(usize, f64, f64),
    Rebalance,
}

fn churn_op_strategy() -> impl Strategy<Value = ChurnOp> {
    prop_oneof![
        (0.0..18.0f64, 0.5..2.0f64).prop_map(|(lo, w)| ChurnOp::Subscribe(lo, lo + w)),
        (0usize..64).prop_map(ChurnOp::Unsubscribe),
        (0usize..64, 0.0..18.0f64, 0.5..2.0f64).prop_map(|(i, lo, w)| ChurnOp::Resubscribe(
            i,
            lo,
            lo + w
        )),
        Just(ChurnOp::Rebalance),
    ]
}

proptest! {
    #[test]
    fn dynamic_churn_keeps_ids_and_counts_consistent(
        ops in prop::collection::vec(churn_op_strategy(), 1..40),
        k in 1usize..5,
    ) {
        use pubsub_core::{DynamicClustering, DynamicError};
        let grid = Grid::cube(0.0, 20.0, 1, 20).unwrap();
        let probs = CellProbability::uniform(&grid);
        let mut s = DynamicClustering::new(grid, probs, KMeans::new(KMeansVariant::MacQueen), k);
        // Shadow model: the rect each issued id currently holds.
        let mut live: Vec<Option<Rect>> = Vec::new();
        for op in &ops {
            match *op {
                ChurnOp::Subscribe(lo, hi) => {
                    let rect = Rect::new(vec![Interval::new(lo, hi).unwrap()]);
                    let id = s.subscribe(rect.clone());
                    // Ids are issued densely and stay stable forever.
                    prop_assert_eq!(id.index(), live.len());
                    live.push(Some(rect));
                }
                ChurnOp::Unsubscribe(i) if !live.is_empty() => {
                    let i = i % live.len();
                    let id = pubsub_core::SubscriptionId(i);
                    match (&live[i], s.unsubscribe(id)) {
                        (Some(_), Ok(())) => live[i] = None,
                        (None, Err(DynamicError::UnknownSubscription(bad))) => {
                            prop_assert_eq!(bad, id);
                        }
                        (state, res) => {
                            return Err(TestCaseError::fail(format!(
                                "unsubscribe({i}) gave {res:?} with shadow {state:?}"
                            )));
                        }
                    }
                }
                ChurnOp::Resubscribe(i, lo, hi) if !live.is_empty() => {
                    let i = i % live.len();
                    let id = pubsub_core::SubscriptionId(i);
                    let rect = Rect::new(vec![Interval::new(lo, hi).unwrap()]);
                    match (&live[i], s.resubscribe(id, rect.clone())) {
                        (Some(_), Ok(())) => live[i] = Some(rect),
                        (None, Err(DynamicError::UnknownSubscription(bad))) => {
                            prop_assert_eq!(bad, id);
                        }
                        (state, res) => {
                            return Err(TestCaseError::fail(format!(
                                "resubscribe({i}) gave {res:?} with shadow {state:?}"
                            )));
                        }
                    }
                }
                ChurnOp::Unsubscribe(_) | ChurnOp::Resubscribe(..) => {}
                ChurnOp::Rebalance => {
                    s.rebalance();
                    prop_assert_eq!(s.pending_changes(), 0);
                }
            }
            prop_assert_eq!(
                s.num_subscriptions(),
                live.iter().filter(|r| r.is_some()).count()
            );
        }
        // After a final rebalance, points covered by no live rect have
        // no group, and every live rect's center has one.
        s.rebalance();
        for r in live.iter().flatten() {
            let iv = r.interval(0);
            let center = geometry::Point::new(vec![(iv.lo() + iv.hi()) / 2.0]);
            prop_assert!(s.group_of_point(&center).is_some(), "live center uncovered");
        }
        if live.iter().all(|r| r.is_none()) {
            prop_assert_eq!(s.group_of_point(&geometry::Point::new(vec![10.0])), None);
        }
    }
}
