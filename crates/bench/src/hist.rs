//! Log-bucketed latency histogram: HDR-style, dependency-free,
//! deterministic.
//!
//! Values (nanoseconds) are bucketed exactly below 64 and
//! logarithmically above: each power-of-two octave is split into 32
//! linear subbuckets, so any recorded value is reported within ~3%
//! ([`LatencyHistogram::percentile`] returns the bucket's inclusive
//! upper bound, never underestimating a quantile). Recording is O(1)
//! with a fixed 1920-slot table, covering the full `u64` range with no
//! allocation after construction and no floating point on the record
//! path — two runs that record the same multiset of values produce
//! bit-identical summaries regardless of order.

/// Subbucket resolution: each octave splits into `2^SUB_BITS` linear
/// buckets (relative error ≤ `2^-SUB_BITS` ≈ 3%).
const SUB_BITS: u32 = 5;
const SUBS: usize = 1 << SUB_BITS;
/// Values below `2 * SUBS` get exact unit-width buckets.
const EXACT: u64 = (2 * SUBS) as u64;
/// Octaves above the exact range: msb ∈ [SUB_BITS+1, 63].
const SLOTS: usize = 2 * SUBS + (63 - SUB_BITS as usize) * SUBS;

/// A fixed-size log-bucketed histogram of `u64` latencies.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

/// Deterministic percentile summary of one histogram, ready for JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of recorded values.
    pub count: u64,
    /// Mean (truncating) of the exact recorded values.
    pub mean: u64,
    /// Median (bucket upper bound).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Exact smallest recorded value.
    pub min: u64,
    /// Exact largest recorded value.
    pub max: u64,
}

fn bucket_of(v: u64) -> usize {
    if v < EXACT {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = ((v >> shift) as usize) & (SUBS - 1);
    (shift as usize + 1) * SUBS + sub
}

/// Inclusive upper bound of bucket `i` — what quantiles report.
fn bucket_top(i: usize) -> u64 {
    if (i as u64) < EXACT {
        return i as u64;
    }
    let shift = (i / SUBS - 1) as u32;
    let sub = (i % SUBS) as u64;
    // In u128: the top octave's last bucket ends exactly at 2^64 - 1.
    let next = (u128::from(SUBS as u64 + sub) + 1) << shift;
    u64::try_from(next - 1).unwrap_or(u64::MAX)
}

impl LatencyHistogram {
    /// An empty histogram (one fixed allocation).
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; SLOTS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value. O(1), allocation-free.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q ∈ [0, 1]`: the inclusive upper bound
    /// of the bucket holding the `ceil(q · count)`-th smallest value
    /// (so it never underestimates), clamped to the exact observed
    /// min/max. Returns 0 on an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_top(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The full summary (count, mean, p50/p90/p99/p999, min, max).
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            mean: if self.count == 0 {
                0
            } else {
                u64::try_from(self.sum / u128::from(self.count)).unwrap_or(u64::MAX)
            },
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p99: self.percentile(0.99),
            p999: self.percentile(0.999),
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
        }
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        // Every value maps into a bucket whose top bounds it from
        // above, and bucket indices never decrease with the value.
        let mut last = 0usize;
        for v in (0..4096u64).chain([u64::MAX / 2, u64::MAX - 1, u64::MAX]) {
            let b = bucket_of(v);
            assert!(b >= last, "bucket index regressed at {v}");
            assert!(bucket_top(b) >= v, "top({b}) < {v}");
            // Relative error of the bound is within one subbucket.
            if v >= EXACT {
                assert!(bucket_top(b) - v <= v / (SUBS as u64 - 1));
            }
            last = b;
        }
        assert!(bucket_of(u64::MAX) < SLOTS);
    }

    #[test]
    fn exact_range_is_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..EXACT {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(1.0), EXACT - 1);
        let s = h.summary();
        assert_eq!(s.count, EXACT);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, EXACT - 1);
        // ceil-rank median of 0..64 is the 32nd smallest, i.e. 31.
        assert_eq!(s.p50, EXACT / 2 - 1);
    }

    #[test]
    fn percentiles_bound_from_above_within_three_percent() {
        let mut h = LatencyHistogram::new();
        for i in 1..=100_000u64 {
            h.record(i * 17); // 17 .. 1.7e6 ns, uniform
        }
        for (q, exact) in [(0.5, 850_000.0), (0.99, 1_683_000.0), (0.999, 1_698_300.0)] {
            let got = h.percentile(q) as f64;
            assert!(got >= exact * 0.999, "q{q}: {got} < {exact}");
            assert!(got <= exact * 1.04, "q{q}: {got} too loose vs {exact}");
        }
    }

    #[test]
    fn order_independent_and_mergeable() {
        let values: Vec<u64> = (0..5_000u64)
            .map(|i| (i * 2654435761) % 10_000_000)
            .collect();
        let mut fwd = LatencyHistogram::new();
        let mut rev = LatencyHistogram::new();
        for &v in &values {
            fwd.record(v);
        }
        for &v in values.iter().rev() {
            rev.record(v);
        }
        assert_eq!(fwd.summary(), rev.summary());

        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let (left, right) = values.split_at(1234);
        for &v in left {
            a.record(v);
        }
        for &v in right {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.summary(), fwd.summary());
    }

    #[test]
    fn empty_and_extremes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.summary().count, 0);
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.summary().min, 0);
        assert_eq!(h.summary().max, u64::MAX);
        assert_eq!(h.percentile(1.0), u64::MAX);
    }
}
