//! Shared scaffolding for the table/figure regeneration binaries and the
//! Criterion benches.
//!
//! Every binary accepts a `--scale` flag:
//!
//! * `--scale quick` — small networks and workloads, seconds per run;
//! * `--scale medium` — the default: recognizable shapes in under a
//!   minute or two;
//! * `--scale paper` — the paper's full parameters (minutes; build with
//!   `--release`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;

pub use hist::{LatencyHistogram, LatencySummary};

/// Run scale selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-per-run smoke scale.
    Quick,
    /// Default: shape-faithful but affordable.
    Medium,
    /// The paper's full parameters.
    Paper,
}

impl Scale {
    /// Parses `--scale quick|medium|paper` from `std::env::args`,
    /// defaulting to `Medium`. Unknown values abort with a usage
    /// message.
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        for i in 0..args.len() {
            if args[i] == "--scale" {
                match args.get(i + 1).map(String::as_str) {
                    Some("quick") => return Scale::Quick,
                    Some("medium") => return Scale::Medium,
                    Some("paper") => return Scale::Paper,
                    other => {
                        eprintln!(
                            "usage: --scale quick|medium|paper (got {:?})",
                            other.unwrap_or("<missing>")
                        );
                        std::process::exit(2);
                    }
                }
            }
        }
        Scale::Medium
    }
}

/// Whether `--csv` was passed (bins then emit machine-readable CSV via
/// `sim::report::render_*_csv` instead of the human tables).
pub fn csv_requested() -> bool {
    std::env::args().any(|a| a == "--csv")
}
