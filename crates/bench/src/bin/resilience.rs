//! Extension study: delivery under failures. Sweeps the per-epoch link
//! failure rate and reports how much of the interested population each
//! clustering still reaches, at what cost — the degraded-mode behavior
//! the paper's fault-free evaluation leaves open.
//!
//! ```text
//! cargo run --release -p pubsub-bench --bin resilience [-- --scale quick|medium|paper]
//! ```
//!
//! Environment knobs (see `docs/BENCHMARK.md`): `PUBSUB_FAULT_SEED`
//! seeds the fault schedules (default 2002); `PUBSUB_RETRY_MAX`,
//! `PUBSUB_RETRY_LOSS` and `PUBSUB_RETRY_BACKOFF` tune the retry
//! policy. All draws go through the workspace's deterministic RNG, so
//! output is bit-identical at any `PUBSUB_THREADS`.

use netsim::{FaultModel, FaultSchedule, Topology, TransitStubParams};
use pubsub_bench::Scale;
use pubsub_core::{
    CellProbability, ClusteringAlgorithm, DynamicClustering, GridFramework, KMeans, KMeansVariant,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::{failure_churn, Evaluator, RetryPolicy};
use workload::{PredicateDist, Section3Model};

struct Config {
    topo: TransitStubParams,
    subs: usize,
    events: usize,
    epochs: usize,
    k: usize,
}

fn config(scale: Scale) -> Config {
    match scale {
        Scale::Quick => Config {
            topo: TransitStubParams::paper_100_nodes(),
            subs: 150,
            events: 60,
            epochs: 3,
            k: 15,
        },
        Scale::Medium => Config {
            topo: TransitStubParams::paper_100_nodes(),
            subs: 400,
            events: 200,
            epochs: 5,
            k: 30,
        },
        Scale::Paper => Config {
            topo: TransitStubParams::paper_300_nodes(),
            subs: 1000,
            events: 500,
            epochs: 8,
            k: 50,
        },
    }
}

fn main() {
    let cfg = config(Scale::from_args());
    let fault_seed: u64 = pubsub_core::env_knob("PUBSUB_FAULT_SEED", 2002, |s| s.parse().ok());
    let policy = RetryPolicy::from_env();

    let mut rng = StdRng::seed_from_u64(fault_seed);
    let topo = Topology::generate(&cfg.topo, &mut rng);
    let model = Section3Model {
        regionalism: 0.4,
        dist: PredicateDist::Uniform,
        num_subscriptions: cfg.subs,
        num_events: cfg.events,
    };
    let w = model.generate(&topo, &mut rng);
    let grid = geometry::Grid::new(w.bounds.clone(), w.suggested_bins.clone())
        .expect("workload bounds form a valid grid");
    let rects: Vec<geometry::Rect> = w.subscriptions.iter().map(|s| s.rect.clone()).collect();
    let sample: Vec<geometry::Point> = w.events.iter().map(|e| e.point.clone()).collect();
    let probs = CellProbability::empirical(&grid, &sample);
    let fw = GridFramework::build(grid.clone(), &rects, &probs, Some(2000));
    let clustering = KMeans::new(KMeansVariant::Forgy).cluster(&fw, cfg.k);

    let mut ev = Evaluator::new(&topo, &w);
    let base = ev.grid_clustering_breakdown(&fw, &clustering, 0.0);

    println!(
        "delivery under failures: {} nodes, {} subscriptions, {} events, {} epochs, K={}",
        topo.num_nodes(),
        cfg.subs,
        cfg.events,
        cfg.epochs,
        cfg.k
    );
    println!(
        "fault seed {fault_seed}; retry policy: max={} loss={:.2} backoff={:.1}",
        policy.max_retries, policy.loss_prob, policy.backoff_base
    );
    println!(
        "fault-free baseline: mean cost {:.1} ({} multicast / {} unicast events)",
        base.mean_cost(),
        base.multicast_events,
        base.unicast_events
    );
    println!();
    println!(
        "{:>9} {:>10} {:>8} {:>9} {:>8} {:>8} {:>9} {:>10} {:>9}",
        "link-fail",
        "delivered%",
        "dropped",
        "fallback",
        "retries",
        "rebuilds",
        "repair",
        "mean-cost",
        "inflate%"
    );
    for &rate in &[0.0, 0.02, 0.05, 0.1, 0.2] {
        let schedule = if rate == 0.0 {
            FaultSchedule::empty()
        } else {
            let fm = FaultModel {
                node_crash: rate / 4.0,
                degrade: rate,
                ..FaultModel::with_link_fail(cfg.epochs, rate)
            };
            FaultSchedule::random(topo.graph(), &fm, fault_seed)
        };
        let r = ev.resilience_breakdown(&fw, &clustering, 0.0, &schedule, &policy, fault_seed);
        println!(
            "{:>9.2} {:>10.2} {:>8} {:>9} {:>8} {:>8} {:>9.0} {:>10.1} {:>9.1}",
            rate,
            100.0 * r.delivery_rate(),
            r.dropped,
            r.fallback_deliveries,
            r.retry_attempts,
            r.spt_rebuilds,
            r.repair_traffic,
            r.mean_cost(),
            100.0 * r.inflation_vs(&base),
        );
    }

    // Failure-induced churn: crashes unsubscribe their node's
    // subscriptions and the dynamic clustering rebalances per epoch.
    let fm = FaultModel {
        node_crash: 0.05,
        ..FaultModel::with_link_fail(cfg.epochs, 0.1)
    };
    let schedule = FaultSchedule::random(topo.graph(), &fm, fault_seed);
    let mut dynamic =
        DynamicClustering::new(grid, probs, KMeans::new(KMeansVariant::MacQueen), cfg.k);
    let homes: Vec<_> = w
        .subscriptions
        .iter()
        .map(|s| (dynamic.subscribe(s.rect.clone()), s.node))
        .collect();
    dynamic.rebalance();
    let churn = failure_churn(&mut dynamic, &homes, topo.graph(), &schedule)
        .expect("all churn ids were just issued");
    println!();
    println!(
        "failure churn (link-fail 0.10, crash 0.05): {} crashes forced {} unsubscribes \
         over {} epochs; {} rebalance moves; {} of {} subscriptions survive",
        churn.crashed_nodes,
        churn.forced_unsubscribes,
        churn.epochs,
        churn.rebalance_moves,
        churn.final_subscriptions,
        homes.len()
    );
    println!();
    println!("delivered% counts primary and fallback copies; dropped members had no");
    println!("surviving path. repair is the control traffic of re-installing trees.");
}
