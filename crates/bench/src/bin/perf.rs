//! Parallel-pipeline benchmark: wall-clock of every clustering
//! algorithm across hyper-cell counts and worker-thread counts, with a
//! bit-identity check of each run against its single-thread reference.
//!
//! Emits `results/BENCH_parallel.json` (machine-readable) and a human
//! table on stdout.
//!
//! ```text
//! cargo run --release -p pubsub-bench --bin perf [-- --scale quick|medium|paper]
//! ```
//!
//! Every timed run starts from a cold shared distance cache
//! ([`GridFramework::with_cold_distance_cache`]), so the matrix build —
//! the dominant parallel section for Pairwise and MST — is included in
//! each measurement. The thread count is forced per run through
//! `parallel::with_threads`, overriding both `PUBSUB_THREADS` and the
//! detected CPU count; on a single-CPU host the >1-thread rows still
//! run (and still must be bit-identical) but show no speedup.

use std::fmt::Write as _;
use std::time::Instant;

use netsim::TransitStubParams;
use pubsub_bench::Scale;
use pubsub_core::parallel::{self, with_threads};
use pubsub_core::{
    Clustering, ClusteringAlgorithm, GridFramework, KMeans, KMeansVariant, MstClustering,
    PairsStrategy, PairwiseGrouping,
};
use sim::StockScenario;
use workload::StockModel;

struct Record {
    algorithm: &'static str,
    cells: usize,
    threads: usize,
    millis: f64,
    identical: bool,
}

fn algorithms() -> Vec<(&'static str, Box<dyn ClusteringAlgorithm>)> {
    vec![
        ("kmeans", Box::new(KMeans::new(KMeansVariant::MacQueen))),
        ("forgy", Box::new(KMeans::new(KMeansVariant::Forgy))),
        ("mst", Box::new(MstClustering::new())),
        (
            "pairs",
            Box::new(PairwiseGrouping::new(PairsStrategy::Exact)),
        ),
        (
            "pairs-approx",
            Box::new(PairwiseGrouping::new(PairsStrategy::Approximate {
                seed: 99,
            })),
        ),
    ]
}

fn assignment(fw: &GridFramework, c: &Clustering) -> Vec<usize> {
    (0..fw.hypercells().len())
        .map(|h| c.group_of_hyper(h))
        .collect()
}

fn main() {
    let scale = Scale::from_args();
    let (cell_counts, thread_counts, subs, events, k) = match scale {
        Scale::Quick => (vec![200usize, 500], vec![1usize, 2, 4], 300, 150, 20),
        Scale::Medium => (
            vec![500usize, 1000, 2000],
            vec![1usize, 2, 4],
            1000,
            300,
            40,
        ),
        Scale::Paper => (
            vec![2000usize, 4000, 6000],
            vec![1usize, 2, 4, 8],
            1000,
            500,
            60,
        ),
    };

    let model = StockModel::default().with_sizes(subs, events);
    let sc = StockScenario::generate(&model, &TransitStubParams::paper_100_nodes(), 100, 2002);
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!(
        "{:>13} {:>7} {:>8} {:>10} {:>10}   (host has {} hardware thread(s))",
        "algorithm", "cells", "threads", "ms", "identical", host_threads
    );

    let mut records: Vec<Record> = Vec::new();
    for &cells in &cell_counts {
        let fw = sc.framework(cells);
        let actual = fw.hypercells().len();

        // The shared distance-matrix build alone: the section Pairwise
        // and MST spend most of their time in.
        let mut matrix_reference: Option<Vec<u64>> = None;
        for &threads in &thread_counts {
            let cold = fw.with_cold_distance_cache();
            let start = Instant::now();
            with_threads(threads, || {
                cold.distance_matrix();
            });
            let millis = start.elapsed().as_secs_f64() * 1e3;
            let bits: Vec<u64> = cold.distance_matrix().map_or_else(Vec::new, |m| {
                (0..actual)
                    .flat_map(|i| (0..i).map(move |j| (i, j)))
                    .map(|(i, j)| m.get(i, j).to_bits())
                    .collect()
            });
            let identical = match &matrix_reference {
                None => {
                    matrix_reference = Some(bits);
                    true
                }
                Some(reference) => *reference == bits,
            };
            assert!(identical, "distance matrix diverged at {threads} threads");
            println!(
                "{:>13} {actual:>7} {threads:>8} {millis:>10.1} {identical:>10}",
                "distances"
            );
            records.push(Record {
                algorithm: "distances",
                cells: actual,
                threads,
                millis,
                identical,
            });
        }

        for (name, alg) in algorithms() {
            let mut reference: Option<Vec<usize>> = None;
            for &threads in &thread_counts {
                let cold = fw.with_cold_distance_cache();
                let start = Instant::now();
                let clustering = with_threads(threads, || alg.cluster(&cold, k));
                let millis = start.elapsed().as_secs_f64() * 1e3;
                let got = assignment(&fw, &clustering);
                let identical = match &reference {
                    None => {
                        reference = Some(got);
                        true
                    }
                    Some(reference) => *reference == got,
                };
                assert!(
                    identical,
                    "{name} diverged at {threads} threads ({actual} cells)"
                );
                println!("{name:>13} {actual:>7} {threads:>8} {millis:>10.1} {identical:>10}");
                records.push(Record {
                    algorithm: name,
                    cells: actual,
                    threads,
                    millis,
                    identical,
                });
            }
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"generated_by\": \"cargo run --release -p pubsub-bench --bin perf -- --scale {}\",",
        match scale {
            Scale::Quick => "quick",
            Scale::Medium => "medium",
            Scale::Paper => "paper",
        }
    );
    let _ = writeln!(json, "  \"host_threads\": {host_threads},");
    let _ = writeln!(json, "  \"default_workers\": {},", parallel::num_threads());
    json.push_str(
        "  \"note\": \"each run starts from a cold distance cache; 'identical' means the \
         assignment (or matrix) is bit-equal to the 1-thread reference\",\n",
    );
    json.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"algorithm\": \"{}\", \"cells\": {}, \"threads\": {}, \"millis\": {:.3}, \"identical\": {}}}",
            r.algorithm, r.cells, r.threads, r.millis, r.identical
        );
        json.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_parallel.json", json).expect("write BENCH_parallel.json");
    println!();
    println!(
        "wrote results/BENCH_parallel.json ({} records)",
        records.len()
    );
}
