//! Always-on broker service benchmark: sustained concurrent ingest
//! through [`BrokerService`](pubsub_core::BrokerService) under
//! three plan-swap regimes.
//!
//! Emits `results/BENCH_service.json` (machine-readable) and a human
//! table on stdout.
//!
//! ```text
//! cargo run --release -p pubsub-bench --bin service [-- --scale quick|medium|paper]
//! ```
//!
//! Three series over the same subscription population and event
//! stream, each a fresh service instance:
//!
//! * **cold-plan** — no rebalances: every event is decided by the
//!   initial validated plan (steady-state baseline);
//! * **hot-swap** — a handful of churn-driven rebalance + hot-swap
//!   cycles spread across the run, concurrent with ingest;
//! * **swap-storm** — a rebalance every few hundred events, the
//!   worst-case swap pressure the core stress test pins down.
//!
//! Per series: sustained offered events/sec plus p50/p90/p99/p999
//! offer→decision latency from the shared log-bucketed
//! [`LatencyHistogram`]. The run **asserts** robustness before
//! reporting: zero aborted swaps, the expected swap counts (zero for
//! cold, nonzero otherwise), `delivered + shed == offered` with the
//! block policy shedding nothing, and every decision stamped with a
//! validated published plan version — so CI can use a quick-scale run
//! as the service-loop soak smoke.

use std::fmt::Write as _;
use std::time::Instant;

use geometry::{Grid, Interval, Point, Rect};
use pubsub_bench::{LatencyHistogram, LatencySummary, Scale};
use pubsub_core::{
    parallel, CellProbability, DynamicClustering, KMeans, KMeansVariant, ServiceConfig,
    ServiceReport, ShedPolicy, SubscriptionId,
};
use rand::prelude::*;

const GRID_CELLS: usize = 512;
const GROUPS: usize = 32;
const THRESHOLD: f64 = 0.15;
const HOT_REGION: f64 = 0.05;
/// Swaps in the hot-swap series.
const HOT_SWAPS: usize = 8;
/// Events between swaps in the swap-storm series.
const STORM_EVERY: usize = 512;

struct SeriesRecord {
    name: &'static str,
    events: usize,
    wall_secs: f64,
    report: ServiceReport,
    latency: LatencySummary,
}

fn random_rect(rng: &mut StdRng) -> Rect {
    let (lo, width) = if rng.gen_bool(0.3) {
        (
            rng.gen_range(0.0..HOT_REGION * 0.8),
            rng.gen_range(0.002..0.01),
        )
    } else {
        (rng.gen_range(0.0..0.98), rng.gen_range(0.005..0.02))
    };
    Rect::new(vec![Interval::new(lo, (lo + width).min(1.0)).unwrap()])
}

fn build_dynamic(subs: &[Rect]) -> (DynamicClustering, Vec<SubscriptionId>) {
    let grid = Grid::cube(0.0, 1.0, 1, GRID_CELLS).unwrap();
    let probs = CellProbability::uniform(&grid);
    let mut dynamic = DynamicClustering::new(
        grid,
        probs,
        KMeans::new(KMeansVariant::MacQueen),
        GROUPS.min(subs.len()),
    );
    let ids = subs.iter().map(|r| dynamic.subscribe(r.clone())).collect();
    dynamic
        .try_rebalance()
        .expect("initial population rebalances");
    (dynamic, ids)
}

/// Offers the whole stream, swapping every `swap_every` events (each
/// swap preceded by one resubscribe so the rebalance has real churn),
/// then drains and shuts down. Panics on any aborted swap.
fn run_series(
    name: &'static str,
    subs: &[Rect],
    ids_seed: u64,
    events: &[Point],
    swap_every: Option<usize>,
) -> SeriesRecord {
    let (dynamic, ids) = build_dynamic(subs);
    let config = ServiceConfig::from_env();
    let lossless = matches!(config.shed, ShedPolicy::Block);
    let service =
        pubsub_core::BrokerService::start(dynamic, config).expect("initial plan validates");
    let mut rng = StdRng::seed_from_u64(ids_seed);

    let start = Instant::now();
    for (i, p) in events.iter().enumerate() {
        service.offer(p.clone());
        if swap_every.is_some_and(|k| i % k == k - 1) {
            let id = ids[rng.gen_range(0..ids.len())];
            service.resubscribe(id, random_rect(&mut rng));
            service
                .rebalance()
                .unwrap_or_else(|e| panic!("{name}: swap aborted: {e}"));
        }
    }
    service.drain();
    let wall_secs = start.elapsed().as_secs_f64().max(1e-12);
    let (report, _) = service.shutdown();

    // Robustness gates (these make a quick run a valid CI soak).
    assert_eq!(report.aborts, 0, "{name}: aborted swaps");
    let expected_swaps = swap_every.map_or(0, |k| events.len() / k) as u64;
    assert_eq!(report.swaps, expected_swaps, "{name}: swap count");
    assert!(
        report.partitions_offered(),
        "{name}: delivered + shed does not partition offered load"
    );
    if lossless {
        assert_eq!(report.shed, 0, "{name}: block policy must not shed");
    }
    for r in &report.records {
        assert!(
            report.published_versions.contains(&r.plan_version),
            "{name}: event {} decided by unpublished plan {}",
            r.id,
            r.plan_version
        );
    }

    let mut hist = LatencyHistogram::new();
    for r in &report.records {
        hist.record(r.latency_ns);
    }
    SeriesRecord {
        name,
        events: events.len(),
        wall_secs,
        latency: hist.summary(),
        report,
    }
}

fn main() {
    let scale = Scale::from_args();
    let (n, num_events): (usize, usize) = match scale {
        Scale::Quick => (2_000, 30_000),
        Scale::Medium => (10_000, 150_000),
        Scale::Paper => (20_000, 400_000),
    };
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = parallel::num_threads();
    let config = ServiceConfig::from_env();

    let mut rng = StdRng::seed_from_u64(2002 + n as u64);
    let subs: Vec<Rect> = (0..n).map(|_| random_rect(&mut rng)).collect();
    let events: Vec<Point> = (0..num_events)
        .map(|_| {
            let x = if rng.gen_bool(0.3) {
                rng.gen_range(0.0..HOT_REGION)
            } else {
                rng.gen_range(0.0..1.0)
            };
            Point::new(vec![x])
        })
        .collect();

    println!(
        "{:>10} {:>9} {:>6} {:>13} {:>9} {:>9} {:>9} {:>9}   ({} hardware thread(s), {} ingest worker(s), queue {}, shed {})",
        "series",
        "events",
        "swaps",
        "events/sec",
        "p50 ns",
        "p99 ns",
        "p999 ns",
        "max ns",
        host_threads,
        config.ingest_threads,
        config.queue_depth,
        config.shed,
    );

    let storm_every = STORM_EVERY.min(num_events / 8);
    let series = [
        run_series("cold-plan", &subs, 11, &events, None),
        run_series("hot-swap", &subs, 12, &events, Some(num_events / HOT_SWAPS)),
        run_series("swap-storm", &subs, 13, &events, Some(storm_every)),
    ];

    for s in &series {
        println!(
            "{:>10} {:>9} {:>6} {:>13.0} {:>9} {:>9} {:>9} {:>9}",
            s.name,
            s.events,
            s.report.swaps,
            s.events as f64 / s.wall_secs,
            s.latency.p50,
            s.latency.p99,
            s.latency.p999,
            s.latency.max,
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"generated_by\": \"cargo run --release -p pubsub-bench --bin service -- --scale {}\",",
        match scale {
            Scale::Quick => "quick",
            Scale::Medium => "medium",
            Scale::Paper => "paper",
        }
    );
    let _ = writeln!(json, "  \"host_threads\": {host_threads},");
    let _ = writeln!(json, "  \"workers\": {workers},");
    let _ = writeln!(
        json,
        "  \"ingest_threads\": {}, \"queue_depth\": {}, \"shed\": \"{}\",",
        config.ingest_threads, config.queue_depth, config.shed
    );
    let _ = writeln!(
        json,
        "  \"subscriptions\": {n}, \"grid_cells\": {GRID_CELLS}, \"groups\": {GROUPS}, \"threshold\": {THRESHOLD},"
    );
    json.push_str(
        "  \"note\": \"concurrent ingest through BrokerService (bounded queue, block policy, \
         epoch-cached snapshot reads); latency = offer-to-decision nanoseconds incl. queue wait, \
         log-bucketed histogram (~3% bucket error); every series asserts zero aborts, exact swap \
         counts, delivered + shed == offered, and that each decision used a validated published \
         plan before reporting; swaps run concurrently with ingest on the rebalancer thread\",\n",
    );
    json.push_str("  \"series\": [\n");
    for (i, s) in series.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"series\": \"{}\", \"events\": {}, \"swaps\": {}, \"aborts\": {}, \
             \"shed\": {}, \"delivered\": {}, \"events_per_sec\": {:.0}, \
             \"latency_ns\": {{\"mean\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \
             \"p999\": {}, \"max\": {}}}, \"partitioned\": true, \"validated_plans\": true}}",
            s.name,
            s.events,
            s.report.swaps,
            s.report.aborts,
            s.report.shed,
            s.report.delivered,
            s.events as f64 / s.wall_secs,
            s.latency.mean,
            s.latency.p50,
            s.latency.p90,
            s.latency.p99,
            s.latency.p999,
            s.latency.max,
        );
        json.push_str(if i + 1 < series.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_service.json", json).expect("write BENCH_service.json");
    println!();
    println!("wrote results/BENCH_service.json ({} series)", series.len());
}
