//! Regenerates Figure 11 of the paper: solution quality as a function
//! of clustering time (the Figure 10 sweep re-plotted on the time
//! axis; the paper combines the two plots of Figure 10 this way).
//!
//! ```text
//! cargo run --release -p pubsub-bench --bin fig11 [-- --scale quick|medium|paper]
//! ```

use pubsub_bench::Scale;
use sim::experiments::{fig10, Fig10Config};
use sim::report::render_fig11;

fn main() {
    let cfg = match Scale::from_args() {
        Scale::Quick => Fig10Config::quick(),
        Scale::Medium => Fig10Config::medium(),
        Scale::Paper => Fig10Config::paper(),
    };
    let res = fig10(&cfg);
    print!("{}", render_fig11(&res));
}
