//! Million-subscriber scale benchmark: subscription aggregation.
//!
//! Emits `results/BENCH_scale.json` (machine-readable) and a human
//! table on stdout.
//!
//! ```text
//! cargo run --release -p pubsub-bench --bin scale [-- --scale quick|medium|paper]
//! ```
//!
//! The population is a Zipf-head near-duplicate workload
//! ([`workload::NearDupModel`]): N concrete subscribers drawn from a
//! small pool of distinct template rectangles. The bin canonicalizes
//! the population into classes ([`Aggregation`]), builds the weighted
//! class framework, clusters it, compiles the [`AggregatePlan`] and
//! serves a uniform event stream with exact concrete interested sets —
//! timing every stage. A second series builds a [`ShardedAggregate`]
//! and applies churn batches that re-cluster only the slabs (along the
//! selectivity-chosen shard axis) the changed rectangles overlap. A
//! final shard × worker sweep times the parallel sharded build and one
//! mixed add/remove churn batch at the largest configured population.
//!
//! Correctness gates asserted before anything is written:
//!
//! * at quick scale the aggregated serve is cross-checked against the
//!   concrete [`DispatchPlan`] (equal decisions *and* interested sets);
//! * a sharded-parallel smoke builds and churns the same population at
//!   1 and 8 workers and requires bit-identical decisions + interested
//!   sets, with every rebuilt shard passing a [`Validator`] audit;
//! * a regression guard pins the expectations recorded in
//!   `results/BENCH_scale.json`: the class-collapse ratio stays above
//!   its floor and clustering stays the dominant build stage;
//! * churned interested sets are spot-checked against brute force.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use geometry::{Grid, Point, Rect};
use pubsub_bench::Scale;
use pubsub_core::{
    parallel, AggregatePlan, AggregateScratch, Aggregation, CellProbability, ClusteringAlgorithm,
    DispatchPlan, DispatchScratch, GridFramework, KMeans, KMeansVariant, ShardedAggregate,
    Validator,
};
use rand::prelude::*;
use workload::NearDupModel;

const GROUPS: usize = 16;
const THRESHOLD: f64 = 0.3;
const SHARDS: usize = 8;
const CHURN_BATCHES: usize = 4;
const CHUNK: usize = 1024;

struct RunRecord {
    n: usize,
    distinct: usize,
    classes: usize,
    ratio: f64,
    aggregate_ms: f64,
    framework_ms: f64,
    cluster_ms: f64,
    compile_ms: f64,
    scalar_eps: f64,
    chunked_eps: f64,
    churn_batch_ms: Vec<f64>,
    shards_reclustered: usize,
}

/// Churn batch: half weight bumps (existing templates), half fresh
/// rectangles near the domain edge.
fn churn_batch(rng: &mut StdRng, templates: &[Rect], size: usize, dim: usize) -> Vec<Rect> {
    (0..size)
        .map(|i| {
            if i % 2 == 0 {
                templates[rng.gen_range(0..templates.len())].clone()
            } else {
                Rect::new(
                    (0..dim)
                        .map(|_| {
                            let lo: f64 = rng.gen_range(0.0..95.0);
                            let w: f64 = rng.gen_range(0.5..5.0);
                            geometry::Interval::new(lo, (lo + w).min(100.0)).unwrap()
                        })
                        .collect(),
                )
            }
        })
        .collect()
}

fn brute_force(rects: &[Rect], p: &Point) -> Vec<usize> {
    rects
        .iter()
        .enumerate()
        .filter(|(_, r)| r.contains(p))
        .map(|(i, _)| i)
        .collect()
}

fn main() {
    let scale = Scale::from_args();
    // (population, distinct templates, events served)
    let configs: Vec<(usize, usize, usize)> = match scale {
        Scale::Quick => vec![(50_000, 2_000, 20_000)],
        Scale::Medium => vec![(50_000, 2_000, 20_000), (250_000, 8_000, 50_000)],
        Scale::Paper => vec![
            (50_000, 2_000, 20_000),
            (250_000, 8_000, 50_000),
            (1_000_000, 20_000, 100_000),
        ],
    };
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = parallel::num_threads();

    println!(
        "{:>9} {:>8} {:>8} {:>7} {:>9} {:>9} {:>9} {:>9} {:>12} {:>12}   ({host_threads} hardware thread(s), {workers} resolved worker(s))",
        "n", "distinct", "classes", "ratio", "agg ms", "fw ms", "clus ms", "plan ms", "scalar e/s", "chunked e/s",
    );

    let mut records: Vec<RunRecord> = Vec::new();
    for &(n, distinct, num_events) in &configs {
        let dim = 2;
        let model = NearDupModel::new(n, distinct, dim, 2002).expect("model params are valid");
        let w = model.generate(num_events);
        let rects: Vec<Rect> = w.subscriptions.iter().map(|s| s.rect.clone()).collect();
        let events: Vec<Point> = w.events.iter().map(|e| e.point.clone()).collect();
        let grid = Grid::new(w.bounds.clone(), w.suggested_bins.clone()).expect("model grid");
        let probs = CellProbability::uniform(&grid);
        let algorithm = KMeans::new(KMeansVariant::MacQueen);
        let k = GROUPS;

        // Stage 1: canonicalize N concrete subscriptions into classes.
        let start = Instant::now();
        let agg = Arc::new(Aggregation::build_with_grid(&rects, &grid));
        let aggregate_ms = start.elapsed().as_secs_f64() * 1e3;

        // Stage 2: weighted class framework over the full grid.
        let start = Instant::now();
        let framework = agg.build_framework(grid.clone(), &probs, None);
        let framework_ms = start.elapsed().as_secs_f64() * 1e3;

        // Stage 3: cluster the class universe.
        let start = Instant::now();
        let clustering = algorithm.cluster(&framework, k);
        let cluster_ms = start.elapsed().as_secs_f64() * 1e3;

        // Stage 4: compile the aggregate plan.
        let start = Instant::now();
        let plan = AggregatePlan::compile(&framework, &clustering, THRESHOLD, agg.clone());
        let compile_ms = start.elapsed().as_secs_f64() * 1e3;

        // Serve the stream: scalar...
        let mut scratch = AggregateScratch::new();
        let mut total = 0usize;
        let start = Instant::now();
        for p in &events {
            let _ = plan.serve(p, &mut scratch);
            total += scratch.interested().len();
        }
        let scalar_eps = events.len() as f64 / start.elapsed().as_secs_f64().max(1e-12);

        // ...and chunked (the decomposition batch/service paths use).
        let mut deliveries = Vec::new();
        let start = Instant::now();
        let mut lo = 0;
        while lo < events.len() {
            let hi = (lo + CHUNK).min(events.len());
            plan.serve_chunk(lo..hi, |e| &events[e], &mut deliveries, &mut scratch);
            lo = hi;
        }
        let chunked_eps = events.len() as f64 / start.elapsed().as_secs_f64().max(1e-12);
        assert_eq!(deliveries.len(), events.len());

        // Correctness gate: aggregated serve == concrete serve at the
        // smallest scale (the concrete framework is O(N · cells), so
        // the cross-check stays on the 50k population).
        if n == 50_000 {
            let concrete_fw = GridFramework::build(grid.clone(), &rects, &probs, None);
            let concrete_clustering = algorithm.cluster(&concrete_fw, k);
            let concrete_plan = DispatchPlan::compile(&concrete_fw, &concrete_clustering)
                .with_threshold(THRESHOLD)
                .with_subscriptions(&rects);
            let mut cs = DispatchScratch::new();
            for p in events.iter().take(2_000) {
                let d_agg = plan.serve(p, &mut scratch);
                let d_con = concrete_plan.serve(p, &mut cs);
                assert_eq!(d_agg, d_con, "decision diverged at {p:?}");
                assert_eq!(
                    scratch.interested(),
                    cs.interested(),
                    "interested set diverged at {p:?}"
                );
            }
            println!("{n:>9} cross-check: aggregated == concrete over 2000 events");
        }

        // Sharded series: build, audit, churn.
        let mut sharded = ShardedAggregate::build_with_shards(
            &grid,
            agg.clone(),
            CellProbability::uniform,
            &algorithm,
            k,
            THRESHOLD,
            SHARDS,
        );
        let mut rng = StdRng::seed_from_u64(7 + n as u64);
        let templates: Vec<Rect> = rects.iter().take(64).cloned().collect();
        let batch_size = (n / 100).clamp(16, 10_000);
        let mut all_rects = rects.clone();
        let mut churn_batch_ms = Vec::with_capacity(CHURN_BATCHES);
        let mut shards_reclustered = 0usize;
        for _ in 0..CHURN_BATCHES {
            let batch = churn_batch(&mut rng, &templates, batch_size, dim);
            all_rects.extend(batch.iter().cloned());
            let start = Instant::now();
            let report = sharded.apply_churn(&batch, &[], &algorithm);
            churn_batch_ms.push(start.elapsed().as_secs_f64() * 1e3);
            shards_reclustered += report.shards_reclustered;
            assert_eq!(report.added, batch.len());
        }

        // Correctness gate: churned interested sets vs brute force.
        for p in events.iter().take(200) {
            let _ = sharded.serve(p, &mut scratch);
            assert_eq!(
                scratch.interested(),
                brute_force(&all_rects, p),
                "sharded interested set diverged after churn at {p:?}"
            );
        }

        // Sharded-parallel smoke: the worker fan-out is a pure
        // scheduling change — build plus one mixed add/remove churn at
        // 1 and 8 workers must land on bit-identical decisions and
        // interested sets, and every rebuilt shard must pass the full
        // framework + clustering invariant audit.
        if n == 50_000 {
            let smoke_rects: Vec<Rect> = rects.iter().take(5_000).cloned().collect();
            let adds = churn_batch(&mut rng, &templates, 64, dim);
            let removes: Vec<usize> = (0..smoke_rects.len()).step_by(97).take(32).collect();
            let run = |threads: usize| {
                parallel::with_threads(threads, || {
                    let agg = Arc::new(Aggregation::build(&smoke_rects));
                    let mut sh = ShardedAggregate::build_with_shards(
                        &grid,
                        agg,
                        CellProbability::uniform,
                        &algorithm,
                        k,
                        THRESHOLD,
                        4,
                    );
                    let report = sh.apply_churn(&adds, &removes, &algorithm);
                    let mut audit = Validator::new();
                    sh.audit(&mut audit);
                    audit.assert_clean("sharded-parallel smoke audit");
                    let mut scratch = AggregateScratch::new();
                    let served: Vec<_> = events
                        .iter()
                        .take(500)
                        .map(|p| {
                            let d = sh.serve(p, &mut scratch);
                            (d, scratch.interested().to_vec())
                        })
                        .collect();
                    (sh.shard_dim(), report.shards_reclustered, served)
                })
            };
            let serial = run(1);
            let par = run(8);
            assert_eq!(
                serial, par,
                "sharded build/churn diverged between 1 and 8 workers"
            );
            println!(
                "{n:>9} smoke: parallel sharded build/churn identical at 1 vs 8 workers \
                 (axis {}, {} shard re-clusterings, audit clean)",
                serial.0, serial.1
            );
        }

        let ratio = agg.ratio();
        let classes = agg.num_classes();

        // Regression guard vs the expectations recorded in the
        // checked-in results/BENCH_scale.json: the near-dup workload
        // must keep collapsing classes (observed ~26x at this config)
        // and clustering must stay the dominant build stage (observed
        // ~50x the next stage) — an inversion is a build-path
        // regression, not timer noise.
        if n == 50_000 {
            assert!(
                ratio >= 20.0,
                "class-collapse ratio regressed: {ratio:.2}x < 20x"
            );
            assert!(
                cluster_ms >= aggregate_ms
                    && cluster_ms >= framework_ms
                    && cluster_ms >= compile_ms,
                "stage ordering regressed: cluster {cluster_ms:.1} ms is no longer dominant \
                 (agg {aggregate_ms:.1}, fw {framework_ms:.1}, plan {compile_ms:.1})"
            );
            println!("{n:>9} guard: ratio {ratio:.1}x >= 20x, cluster stage dominant");
        }

        let mean_churn = churn_batch_ms.iter().sum::<f64>() / churn_batch_ms.len().max(1) as f64;
        println!(
            "{n:>9} {distinct:>8} {classes:>8} {ratio:>6.1}x {aggregate_ms:>9.1} {framework_ms:>9.1} {cluster_ms:>9.1} {compile_ms:>9.1} {scalar_eps:>12.0} {chunked_eps:>12.0}"
        );
        println!(
            "{n:>9} churn: {mean_churn:>8.2} ms/batch of {batch_size} adds, {shards_reclustered} shard re-clusterings over {CHURN_BATCHES} batches, interested sets exact"
        );
        let _ = total;
        records.push(RunRecord {
            n,
            distinct,
            classes,
            ratio,
            aggregate_ms,
            framework_ms,
            cluster_ms,
            compile_ms,
            scalar_eps,
            chunked_eps,
            churn_batch_ms,
            shards_reclustered,
        });
    }

    // Audit the sharded clusterings on the last (largest) config once
    // more via a fresh build so the audit covers the build path too.
    {
        let &(n, distinct, _) = configs.last().expect("at least one config");
        let model = NearDupModel::new(n.min(50_000), distinct.min(2_000), 2, 2002)
            .expect("model params are valid");
        let w = model.generate(0);
        let rects: Vec<Rect> = w.subscriptions.iter().map(|s| s.rect.clone()).collect();
        let grid = Grid::new(w.bounds.clone(), w.suggested_bins.clone()).expect("model grid");
        let agg = Arc::new(Aggregation::build(&rects));
        let fw = agg.build_framework(grid.clone(), &CellProbability::uniform(&grid), None);
        let clustering = KMeans::new(KMeansVariant::MacQueen).cluster(&fw, GROUPS);
        let mut audit = Validator::new();
        audit
            .check_framework(&fw)
            .check_clustering(&fw, &clustering);
        audit.assert_clean("scale aggregation audit");
    }

    // Shard × worker sweep on the largest configured population: the
    // parallel sharded build and one mixed add/remove churn batch are
    // timed per (shards, workers) combination. On a host with a single
    // hardware thread the multi-worker rows measure scheduling overhead
    // only (see results/README.md) — the decisions are bit-identical
    // across the sweep by construction, which the smoke above asserts.
    struct SweepRow {
        n: usize,
        shards: usize,
        workers: usize,
        shard_dim: usize,
        build_ms: f64,
        churn_ms: f64,
    }
    let sweep: Vec<SweepRow> = {
        let &(n, distinct, _) = configs.last().expect("at least one config");
        let model = NearDupModel::new(n, distinct, 2, 2002).expect("model params are valid");
        let w = model.generate(0);
        let rects: Vec<Rect> = w.subscriptions.iter().map(|s| s.rect.clone()).collect();
        let grid = Grid::new(w.bounds.clone(), w.suggested_bins.clone()).expect("model grid");
        let algorithm = KMeans::new(KMeansVariant::MacQueen);
        let agg = Arc::new(Aggregation::build_with_grid(&rects, &grid));
        let mut rng = StdRng::seed_from_u64(23);
        let templates: Vec<Rect> = rects.iter().take(64).cloned().collect();
        let adds = churn_batch(&mut rng, &templates, (n / 100).clamp(16, 10_000), 2);
        let removes: Vec<usize> = (0..rects.len()).step_by(199).take(2_000).collect();
        let mut rows = Vec::new();
        for shards in [1usize, 4, 8] {
            for threads in [1usize, 8] {
                let (shard_dim, build_ms, churn_ms) = parallel::with_threads(threads, || {
                    let start = Instant::now();
                    let mut sh = ShardedAggregate::build_with_shards(
                        &grid,
                        agg.clone(),
                        CellProbability::uniform,
                        &algorithm,
                        GROUPS,
                        THRESHOLD,
                        shards,
                    );
                    let build_ms = start.elapsed().as_secs_f64() * 1e3;
                    let start = Instant::now();
                    let _ = sh.apply_churn(&adds, &removes, &algorithm);
                    (
                        sh.shard_dim(),
                        build_ms,
                        start.elapsed().as_secs_f64() * 1e3,
                    )
                });
                println!(
                    "    sweep: n={n} shards={shards} workers={threads} axis={shard_dim} \
                     build {build_ms:.1} ms, churn {churn_ms:.1} ms"
                );
                rows.push(SweepRow {
                    n,
                    shards,
                    workers: threads,
                    shard_dim,
                    build_ms,
                    churn_ms,
                });
            }
        }
        rows
    };

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"generated_by\": \"cargo run --release -p pubsub-bench --bin scale -- --scale {}\",",
        match scale {
            Scale::Quick => "quick",
            Scale::Medium => "medium",
            Scale::Paper => "paper",
        }
    );
    let _ = writeln!(json, "  \"host_threads\": {host_threads},");
    let _ = writeln!(json, "  \"workers\": {workers},");
    let _ = writeln!(
        json,
        "  \"groups\": {GROUPS}, \"threshold\": {THRESHOLD}, \"shards\": {SHARDS},"
    );
    json.push_str(
        "  \"note\": \"Zipf-head near-duplicate population aggregated into canonical classes; \
         ratio = concrete / classes; stage times are one cold build; events/sec serve the \
         AggregatePlan with exact concrete interested sets; churn batches fold adds into a \
         ShardedAggregate, re-clustering only the overlapped slabs along the \
         selectivity-chosen shard axis; the sweep times the parallel sharded build and one \
         mixed add/remove churn batch per (shards, workers) combination\",\n",
    );
    json.push_str("  \"runs\": [\n");
    for (i, r) in records.iter().enumerate() {
        let churn: Vec<String> = r.churn_batch_ms.iter().map(|m| format!("{m:.3}")).collect();
        let _ = write!(
            json,
            "    {{\"n\": {}, \"distinct\": {}, \"classes\": {}, \"aggregation_ratio\": {:.2}, \
             \"aggregate_ms\": {:.3}, \"framework_ms\": {:.3}, \"cluster_ms\": {:.3}, \
             \"compile_ms\": {:.3}, \"events_per_sec_scalar\": {:.0}, \
             \"events_per_sec_chunked\": {:.0}, \"churn_batch_ms\": [{}], \
             \"shards_reclustered\": {}}}",
            r.n,
            r.distinct,
            r.classes,
            r.ratio,
            r.aggregate_ms,
            r.framework_ms,
            r.cluster_ms,
            r.compile_ms,
            r.scalar_eps,
            r.chunked_eps,
            churn.join(", "),
            r.shards_reclustered
        );
        json.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"sweep\": [\n");
    for (i, s) in sweep.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"n\": {}, \"shards\": {}, \"workers\": {}, \"shard_dim\": {}, \
             \"build_ms\": {:.3}, \"churn_ms\": {:.3}}}",
            s.n, s.shards, s.workers, s.shard_dim, s.build_ms, s.churn_ms
        );
        json.push_str(if i + 1 < sweep.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_scale.json", json).expect("write BENCH_scale.json");
    println!();
    println!("wrote results/BENCH_scale.json ({} runs)", records.len());
}
