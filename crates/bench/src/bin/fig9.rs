//! Regenerates Figure 9 of the paper: the Figure 7 sweep repeated on a
//! second network generated with a different random seed, showing the
//! algorithm ranking is robust to the topology draw.
//!
//! ```text
//! cargo run --release -p pubsub-bench --bin fig9 [-- --scale quick|medium|paper]
//! ```

use pubsub_bench::Scale;
use sim::experiments::{fig9, Fig7Config};
use sim::report::render_group_sweep;

fn main() {
    let cfg = match Scale::from_args() {
        Scale::Quick => Fig7Config::quick(),
        Scale::Medium => Fig7Config::medium(),
        Scale::Paper => Fig7Config::paper(),
    };
    let (left, right) = fig9(&cfg, cfg.seed.wrapping_add(777));
    print!(
        "{}",
        render_group_sweep("Figure 9 (left): original network", &left)
    );
    println!();
    print!(
        "{}",
        render_group_sweep("Figure 9 (right): different random network", &right)
    );
}
