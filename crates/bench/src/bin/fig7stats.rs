//! Figure 7 with error bars: the improvement-vs-K sweep repeated over
//! several seeds, reported as mean ± standard deviation per algorithm
//! (a robustness quantification beyond the paper's single-seed plots).
//!
//! ```text
//! cargo run --release -p pubsub-bench --bin fig7stats [-- --scale quick|medium|paper]
//! ```

use pubsub_bench::Scale;
use sim::experiments::Fig7Config;
use sim::stats::{fig7_multi_seed, render_multi_seed};

fn main() {
    let (cfg, seeds): (Fig7Config, Vec<u64>) = match Scale::from_args() {
        Scale::Quick => (Fig7Config::quick(), vec![1, 2, 3]),
        Scale::Medium => (Fig7Config::medium(), vec![1, 2, 3, 4, 5]),
        Scale::Paper => (Fig7Config::paper(), vec![1, 2, 3, 4, 5]),
    };
    let res = fig7_multi_seed(&cfg, &seeds);
    print!("{}", render_multi_seed(&res));
}
