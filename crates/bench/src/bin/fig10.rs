//! Regenerates Figure 10 of the paper: solution quality and clustering
//! runtime as a function of the number of cells given to each
//! algorithm.
//!
//! ```text
//! cargo run --release -p pubsub-bench --bin fig10 [-- --scale quick|medium|paper]
//! ```

use pubsub_bench::{csv_requested, Scale};
use sim::experiments::{fig10, Fig10Config};
use sim::report::{render_fig10, render_fig10_csv};

fn main() {
    let cfg = match Scale::from_args() {
        Scale::Quick => Fig10Config::quick(),
        Scale::Medium => Fig10Config::medium(),
        Scale::Paper => Fig10Config::paper(),
    };
    let res = fig10(&cfg);
    if csv_requested() {
        print!("{}", render_fig10_csv(&res));
    } else {
        print!("{}", render_fig10(&res));
    }
}
