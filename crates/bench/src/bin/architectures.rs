//! Architecture comparison (Section 6, item 6 of the paper): the
//! paper's *centralized* model — the first intelligent node matches
//! the event and multicasts to precomputed groups — versus the
//! Gryphon-style *hop-by-hop* broker tree where every node filters and
//! forwards.
//!
//! ```text
//! cargo run --release -p pubsub-bench --bin architectures [-- --scale quick|medium|paper]
//! ```

use broker::BrokerNetwork;
use netsim::TransitStubParams;
use pubsub_bench::Scale;
use pubsub_core::{ClusteringAlgorithm, KMeans, KMeansVariant};
use sim::{Evaluator, MulticastMode, StockScenario};
use workload::StockModel;

fn main() {
    let (model, topo, density_events, max_cells, k) = match Scale::from_args() {
        Scale::Quick => (
            StockModel::default().with_sizes(200, 100),
            TransitStubParams::paper_100_nodes(),
            200,
            400,
            20,
        ),
        Scale::Medium => (
            StockModel::default().with_sizes(1000, 250),
            TransitStubParams::paper_section51(),
            500,
            2000,
            100,
        ),
        Scale::Paper => (
            StockModel::default().with_sizes(1000, 500),
            TransitStubParams::paper_section51(),
            1000,
            6000,
            100,
        ),
    };
    let scenario = StockScenario::generate(&model, &topo, density_events, 2002);
    let mut evaluator = Evaluator::new(&scenario.topo, &scenario.workload);
    let baselines = evaluator.baseline_costs();

    // Centralized: Forgy clustering + dense-mode multicast.
    let fw = scenario.framework(max_cells);
    let clustering = KMeans::new(KMeansVariant::Forgy).cluster(&fw, k);
    let clustered =
        evaluator.grid_clustering_cost(&fw, &clustering, 0.0, MulticastMode::NetworkSupported);

    // Hop-by-hop: broker tree with per-link filters.
    let subs: Vec<(netsim::NodeId, geometry::Rect)> = scenario
        .workload
        .subscriptions
        .iter()
        .map(|s| (s.node, s.rect.clone()))
        .collect();
    let net = BrokerNetwork::build(scenario.topo.graph(), &subs);
    let mut broker_total = 0.0;
    for ev in &scenario.workload.events {
        broker_total += net.deliver(ev.publisher, &ev.point).cost;
    }
    let broker_cost = broker_total / scenario.workload.events.len().max(1) as f64;

    println!(
        "architecture comparison ({} subs, {} events, K = {k}):",
        scenario.workload.subscriptions.len(),
        scenario.workload.events.len()
    );
    println!(
        "  {:<34} {:>10} {:>13}",
        "scheme", "cost/event", "improvement%"
    );
    for (name, cost) in [
        ("unicast", baselines.unicast),
        ("broadcast", baselines.broadcast),
        ("clustered multicast (Forgy)", clustered),
        ("broker tree (hop-by-hop filters)", broker_cost),
        ("ideal multicast", baselines.ideal),
    ] {
        println!(
            "  {name:<34} {cost:>10.0} {:>13.1}",
            baselines.improvement_pct(cost)
        );
    }
    let state = net.state_size();
    println!();
    println!(
        "broker router state: {} filter entries across links (max {} on one link)",
        state.total_filter_entries, state.max_link_entries
    );
    println!(
        "clustered-multicast state: {k} groups x {} member lists, no per-hop filters",
        clustering.num_groups()
    );
    println!();
    println!("broker routing needs no multicast groups at all, at the price of");
    println!("per-hop matching state and global subscription propagation — the");
    println!("trade-off the paper's Section 6 discusses.");
}
