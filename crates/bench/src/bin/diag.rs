//! Diagnostic: match-rate and group-size statistics for the Figure 7
//! scenario (not part of the paper; used to sanity-check the pipeline).

use netsim::TransitStubParams;
use pubsub_core::{ClusteringAlgorithm, KMeans, KMeansVariant};
use sim::StockScenario;
use workload::StockModel;

fn main() {
    let model = StockModel::default().with_sizes(1000, 250);
    let sc = StockScenario::generate(&model, &TransitStubParams::paper_section51(), 500, 2002);
    let fw = sc.framework(2000);
    println!("hyper-cells kept: {}", fw.hypercells().len());
    let matched = sc
        .workload
        .events
        .iter()
        .filter(|e| fw.hyper_of_point(&e.point).is_some())
        .count();
    println!(
        "events matched to a kept cell: {matched} / {}",
        sc.workload.events.len()
    );
    let avg_interested: f64 = sc
        .workload
        .events
        .iter()
        .map(|e| sc.workload.interested_nodes(&e.point).len() as f64)
        .sum::<f64>()
        / sc.workload.events.len() as f64;
    println!("avg interested nodes per event: {avg_interested:.1}");

    // --- No-Loss diagnostics ---
    let nl = sc.noloss(
        &pubsub_core::NoLossConfig {
            max_rects: 2000,
            iterations: 4,
            max_candidates_per_round: 1_000_000,
        },
        100,
    );
    let mut nl_matched = 0usize;
    let mut covered_frac = 0.0f64;
    for e in &sc.workload.events {
        let interested = sc.workload.matching_subscriptions(&e.point);
        if interested.is_empty() {
            continue;
        }
        if let Some(r) = nl.match_event(&e.point) {
            nl_matched += 1;
            let u = &nl.regions()[r].subscribers;
            let cov = interested.iter().filter(|&&i| u.contains(i)).count();
            covered_frac += cov as f64 / interested.len() as f64;
        }
    }
    println!(
        "no-loss: matched {nl_matched} events, avg covered fraction of interested = {:.2}",
        covered_frac / nl_matched.max(1) as f64
    );
    let top = &nl.regions()[..10.min(nl.num_groups())];
    for (i, r) in top.iter().enumerate() {
        println!(
            "  region {i}: |u|={} w={:.4} rect={}",
            r.subscribers.count(),
            r.weight,
            r.rect
        );
    }

    // Framework + delivery summaries via the library's own diagnostics.
    let st = fw.stats();
    println!(
        "framework: {} hyper-cells over {} cells, covered probability {:.2}, members mean {:.1} max {}",
        st.num_hypercells, st.num_cells, st.covered_probability, st.mean_members, st.max_members
    );
    let clustering = KMeans::new(KMeansVariant::Forgy).cluster(&fw, 100);
    {
        let mut ev = sim::Evaluator::new(&sc.topo, &sc.workload);
        let bd = ev.grid_clustering_breakdown(&fw, &clustering, 0.0);
        println!(
            "delivery: match rate {:.0}%, mean cost {:.0}, group nodes {:.1} (wasted {:.1}), interested {:.1}",
            100.0 * bd.match_rate(),
            bd.mean_cost(),
            bd.mean_group_nodes,
            bd.mean_wasted_nodes,
            bd.mean_interested_nodes
        );
    }
    let sizes: Vec<usize> = clustering
        .groups()
        .iter()
        .map(|g| {
            let mut nodes: Vec<_> = g
                .members
                .iter()
                .map(|i| sc.workload.subscriptions[i].node)
                .collect();
            nodes.sort_unstable();
            nodes.dedup();
            nodes.len()
        })
        .collect();
    let avg = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
    println!(
        "groups: {} | avg member-nodes {avg:.1} | max {} | min {}",
        sizes.len(),
        sizes.iter().max().unwrap(),
        sizes.iter().min().unwrap()
    );
}
