//! Extension figure: the full regionalism curve. Tables 1–2 sample the
//! *degree of regionalism* at 0 and 0.4; this bin sweeps it from 0 to 1
//! and traces how regional concentration of interest drives the
//! multicast saving (the paper's Section 3 argument).
//!
//! ```text
//! cargo run --release -p pubsub-bench --bin regionalism [-- --scale quick|medium|paper]
//! ```

use netsim::TransitStubParams;
use pubsub_bench::Scale;
use sim::experiments::regionalism_sweep;

fn main() {
    let (params, subs, events) = match Scale::from_args() {
        Scale::Quick => (TransitStubParams::paper_100_nodes(), 300, 80),
        Scale::Medium => (TransitStubParams::paper_300_nodes(), 1000, 200),
        Scale::Paper => (TransitStubParams::paper_600_nodes(), 1000, 500),
    };
    let degrees = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
    let pts = regionalism_sweep(&params, subs, events, &degrees, 7);
    println!("degree of regionalism vs multicast benefit ({subs} subscriptions, {events} events)");
    println!(
        "{:>8} {:>10} {:>10} {:>14}",
        "degree", "unicast", "ideal", "ideal saves"
    );
    for p in pts {
        println!(
            "{:>8.1} {:>10.0} {:>10.0} {:>13.1}%",
            p.degree, p.unicast, p.ideal, p.ideal_saving_pct
        );
    }
    println!();
    println!("regionalism slashes every cost (Table 1 vs Table 2), but the");
    println!("relative ideal-vs-unicast gap NARROWS at the extremes: when");
    println!("interest collapses onto single stubs, so few nodes want each");
    println!("event that unicast is already nearly optimal — multicast pays");
    println!("most in the mid-range, where interest is regional but plural.");
}
