//! Link-load statistics (Section 6, item 4 of the paper): when
//! messages are large, what matters is not the summed edge cost but
//! how much traffic each link accumulates. This bin replays the stock
//! scenario's event stream under unicast, clustered multicast and
//! per-event ideal multicast, and reports the per-link load
//! distribution of each scheme.
//!
//! ```text
//! cargo run --release -p pubsub-bench --bin loadstats [-- --scale quick|medium|paper]
//! ```

use netsim::{LoadTracker, ShortestPathTree, TransitStubParams};
use pubsub_bench::Scale;
use pubsub_core::{ClusteringAlgorithm, Delivery, GridMatcher, KMeans, KMeansVariant};
use sim::StockScenario;
use workload::StockModel;

fn main() {
    let (model, topo, density_events, max_cells, k) = match Scale::from_args() {
        Scale::Quick => (
            StockModel::default().with_sizes(200, 100),
            TransitStubParams::paper_100_nodes(),
            200,
            400,
            20,
        ),
        Scale::Medium => (
            StockModel::default().with_sizes(1000, 250),
            TransitStubParams::paper_section51(),
            500,
            2000,
            100,
        ),
        Scale::Paper => (
            StockModel::default().with_sizes(1000, 500),
            TransitStubParams::paper_section51(),
            1000,
            6000,
            100,
        ),
    };
    let scenario = StockScenario::generate(&model, &topo, density_events, 2002);
    let graph = scenario.topo.graph();
    let fw = scenario.framework(max_cells);
    let clustering = KMeans::new(KMeansVariant::Forgy).cluster(&fw, k);
    let matcher = GridMatcher::new(&fw, &clustering);

    // Interested sets per event, via the matching engine.
    let index = pubsub_core::SubscriptionIndex::build(&scenario.rects);

    // Per-group member nodes.
    let group_nodes: Vec<Vec<netsim::NodeId>> = clustering
        .groups()
        .iter()
        .map(|g| {
            let mut ns: Vec<netsim::NodeId> = g
                .members
                .iter()
                .map(|i| scenario.workload.subscriptions[i].node)
                .collect();
            ns.sort_unstable();
            ns.dedup();
            ns
        })
        .collect();

    let mut uni = LoadTracker::new(graph);
    let mut clustered = LoadTracker::new(graph);
    let mut ideal = LoadTracker::new(graph);
    let mut spt_cache: std::collections::HashMap<netsim::NodeId, ShortestPathTree> =
        std::collections::HashMap::new();

    for ev in &scenario.workload.events {
        let matching = index.matching(&ev.point);
        let interested_set =
            pubsub_core::BitSet::from_members(scenario.rects.len(), matching.iter().copied());
        let mut nodes: Vec<netsim::NodeId> = matching
            .iter()
            .map(|&i| scenario.workload.subscriptions[i].node)
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        let spt = spt_cache
            .entry(ev.publisher)
            .or_insert_with(|| ShortestPathTree::compute(graph, ev.publisher));
        uni.record_unicast(spt, nodes.iter().copied(), 1.0);
        ideal.record_multicast(graph, spt, nodes.iter().copied(), 1.0);
        match matcher.match_event(&ev.point, &interested_set) {
            Delivery::Multicast { group } => {
                clustered.record_multicast(graph, spt, group_nodes[group].iter().copied(), 1.0);
            }
            Delivery::Unicast => {
                clustered.record_unicast(spt, nodes.iter().copied(), 1.0);
            }
        }
    }

    println!(
        "per-link load over {} events ({} subscriptions, K = {k}):",
        scenario.workload.events.len(),
        scenario.rects.len()
    );
    println!(
        "  {:<22} {:>12} {:>14} {:>14} {:>16}",
        "scheme", "max load", "mean active", "total traffic", "weighted cost"
    );
    for (name, tracker) in [
        ("unicast", &uni),
        ("clustered multicast", &clustered),
        ("ideal multicast", &ideal),
    ] {
        println!(
            "  {name:<22} {:>12.0} {:>14.1} {:>14.0} {:>16.0}",
            tracker.max_load(),
            tracker.mean_active_load(),
            tracker.total_traffic(),
            tracker.weighted_cost(graph)
        );
    }
    println!();
    println!("hottest links under unicast:");
    for (e, l) in uni.hotspots(5) {
        let edge = &graph.edges()[e.index()];
        println!("  {} -- {}  load {:.0}", edge.u, edge.v, l);
    }
    println!();
    println!("multicast's advantage compounds under large messages: shared");
    println!("tree links carry one copy per event instead of one per receiver,");
    println!("so the bottleneck load drops even faster than the summed cost.");
}
