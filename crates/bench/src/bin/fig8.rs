//! Regenerates Figure 8 of the paper: the No-Loss algorithm's
//! improvement as a function of the number of rectangles kept and the
//! number of intersection iterations.
//!
//! ```text
//! cargo run --release -p pubsub-bench --bin fig8 [-- --scale quick|medium|paper]
//! ```

use pubsub_bench::Scale;
use sim::experiments::{fig8, Fig8Config};
use sim::report::render_fig8;

fn main() {
    let cfg = match Scale::from_args() {
        Scale::Quick => Fig8Config::quick(),
        Scale::Medium => Fig8Config::medium(),
        Scale::Paper => Fig8Config::paper(),
    };
    let res = fig8(&cfg);
    print!("{}", render_fig8(&res));
}
