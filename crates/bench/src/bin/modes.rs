//! Extension figure: improvement vs K for one algorithm (Forgy) under
//! all three multicast substrates — the dense/sparse/application-level
//! comparison the paper describes qualitatively in Section 5.1.
//!
//! ```text
//! cargo run --release -p pubsub-bench --bin modes [-- --scale quick|medium|paper]
//! ```

use pubsub_bench::Scale;
use sim::experiments::{modes_sweep, Fig7Config};
use sim::MulticastMode;

fn main() {
    let cfg = match Scale::from_args() {
        Scale::Quick => Fig7Config::quick(),
        Scale::Medium => Fig7Config::medium(),
        Scale::Paper => Fig7Config::paper(),
    };
    let (baselines, series) = modes_sweep(&cfg);
    println!("multicast substrates under Forgy clustering (improvement % over unicast)");
    println!(
        "baselines: unicast={:.0} broadcast={:.0} ideal={:.0}",
        baselines.unicast, baselines.broadcast, baselines.ideal
    );
    print!("{:>5}", "K");
    for s in &series {
        let label = match s.mode {
            MulticastMode::NetworkSupported => "dense",
            MulticastMode::SparseMode => "sparse",
            MulticastMode::ApplicationLevel => "app-level",
        };
        print!(" {label:>12}");
    }
    println!();
    for (row, &k) in cfg.ks.iter().enumerate() {
        print!("{k:>5}");
        for s in &series {
            print!(" {:>12.1}", s.points[row].1);
        }
        println!();
    }
    println!();
    println!("dense mode needs per-(publisher, group) tree state; sparse mode one");
    println!("shared tree per group; application-level none in the network at all.");
}
