//! Ablations beyond the paper (the design-choice studies listed in
//! `DESIGN.md`):
//!
//! 1. hyper-cell merging on/off — how much the Section 4.1 merge step
//!    buys in input size and clustering time;
//! 2. analytic vs empirical `p_p` — what a sampled density estimate
//!    costs in solution quality;
//! 3. the Figure 5 matching threshold — when falling back to unicast
//!    on low-interest multicasts helps.
//!
//! ```text
//! cargo run --release -p pubsub-bench --bin ablations [-- --scale quick|medium|paper]
//! ```

use std::time::Instant;

use netsim::TransitStubParams;
use pubsub_bench::Scale;
use pubsub_core::{ClusteringAlgorithm, GridFramework, KMeans, KMeansVariant};
use sim::{Evaluator, MulticastMode, StockScenario};
use workload::StockModel;

fn main() {
    let (model, topo, density_events, max_cells, k) = match Scale::from_args() {
        Scale::Quick => (
            StockModel::default().with_sizes(200, 100),
            TransitStubParams::paper_100_nodes(),
            200,
            400,
            20,
        ),
        Scale::Medium => (
            StockModel::default().with_sizes(1000, 250),
            TransitStubParams::paper_section51(),
            500,
            2000,
            50,
        ),
        Scale::Paper => (
            StockModel::default().with_sizes(1000, 500),
            TransitStubParams::paper_section51(),
            1000,
            6000,
            100,
        ),
    };
    let scenario = StockScenario::generate(&model, &topo, density_events, 2002);
    let mut evaluator = Evaluator::new(&scenario.topo, &scenario.workload);
    let baselines = evaluator.baseline_costs();
    let forgy = KMeans::new(KMeansVariant::Forgy);
    println!(
        "scenario: {} subs, {} events | baselines unicast={:.0} ideal={:.0}",
        scenario.workload.subscriptions.len(),
        scenario.workload.events.len(),
        baselines.unicast,
        baselines.ideal
    );

    // ------------------------------------------------------------------
    println!("\n== ablation 1: hyper-cell merging ==");
    let grid = scenario.grid();
    let probs = pubsub_core::CellProbability::from_mass_fn(&grid, |r| scenario.density.mass(r));
    for (label, fw) in [
        (
            "merged  ",
            GridFramework::build(grid.clone(), &scenario.rects, &probs, Some(max_cells)),
        ),
        (
            "unmerged",
            GridFramework::build_unmerged(grid.clone(), &scenario.rects, &probs, Some(max_cells)),
        ),
    ] {
        let start = Instant::now();
        let clustering = forgy.cluster(&fw, k);
        let secs = start.elapsed().as_secs_f64();
        let cost =
            evaluator.grid_clustering_cost(&fw, &clustering, 0.0, MulticastMode::NetworkSupported);
        println!(
            "  {label}: {:>6} cells fed to clustering | improvement {:>5.1}% | cluster time {secs:.3}s",
            fw.hypercells().len(),
            baselines.improvement_pct(cost)
        );
    }

    // ------------------------------------------------------------------
    println!("\n== ablation 2: analytic vs empirical publication density ==");
    for (label, fw) in [
        ("analytic ", scenario.framework(max_cells)),
        ("empirical", scenario.framework_empirical(max_cells)),
    ] {
        let clustering = forgy.cluster(&fw, k);
        let cost =
            evaluator.grid_clustering_cost(&fw, &clustering, 0.0, MulticastMode::NetworkSupported);
        let matched = scenario
            .workload
            .events
            .iter()
            .filter(|e| fw.hyper_of_point(&e.point).is_some())
            .count();
        println!(
            "  {label}: improvement {:>5.1}% | {matched}/{} events matched a kept cell",
            baselines.improvement_pct(cost),
            scenario.workload.events.len()
        );
    }

    // ------------------------------------------------------------------
    println!("\n== ablation 3: Figure 5 matching threshold ==");
    let fw = scenario.framework(max_cells);
    let clustering = forgy.cluster(&fw, k);
    println!("  {:>10} {:>13}", "threshold", "improvement%");
    for threshold in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
        let cost = evaluator.grid_clustering_cost(
            &fw,
            &clustering,
            threshold,
            MulticastMode::NetworkSupported,
        );
        println!(
            "  {threshold:>10.2} {:>13.1}",
            baselines.improvement_pct(cost)
        );
    }

    // ------------------------------------------------------------------
    // The paper assumes dense-mode multicast ("the routing tree is a
    // shortest path tree rooted at publisher") and notes sparse mode
    // differs "in the amount of state information and in the structure
    // of the routing tree". Quantify both sides of that trade.
    println!("\n== ablation 5: dense vs sparse vs app-level multicast ==");
    {
        let fw = scenario.framework(max_cells);
        let clustering = forgy.cluster(&fw, k);
        let publishers: std::collections::BTreeSet<_> = scenario
            .workload
            .events
            .iter()
            .map(|e| e.publisher)
            .collect();
        println!(
            "  router state: dense = groups × publishers = {k} × {} = {}; sparse = groups = {k}",
            publishers.len(),
            k * publishers.len()
        );
        println!("  {:<26} {:>13}", "mode", "improvement%");
        for (name, mode) in [
            ("dense (per-publisher SPT)", MulticastMode::NetworkSupported),
            ("sparse (shared RP tree)", MulticastMode::SparseMode),
            ("application-level (MST)", MulticastMode::ApplicationLevel),
        ] {
            let cost = evaluator.grid_clustering_cost(&fw, &clustering, 0.0, mode);
            println!("  {name:<26} {:>13.1}", baselines.improvement_pct(cost));
        }
    }

    // ------------------------------------------------------------------
    // Regionalism of interest: the paper's Section 3 argues multicast
    // benefits hinge on regionally concentrated interest. Sweep the
    // name-center spread to weaken that concentration and watch the
    // clustering benefit respond.
    println!("\n== ablation 7: regionalism of interest (name-center spread) ==");
    println!(
        "  {:>9} {:>13} {:>18}",
        "name sd", "improvement%", "ideal saves vs uni"
    );
    for name_sd in [2.0, 4.0, 8.0, 16.0] {
        let m = model.clone().with_name_sd(name_sd);
        let sc = StockScenario::generate(&m, &topo, density_events, 2002);
        let fw = sc.framework(max_cells);
        let mut ev = Evaluator::new(&sc.topo, &sc.workload);
        let b = ev.baseline_costs();
        let clustering = forgy.cluster(&fw, k);
        let cost = ev.grid_clustering_cost(&fw, &clustering, 0.0, MulticastMode::NetworkSupported);
        println!(
            "  {name_sd:>9.1} {:>13.1} {:>17.1}%",
            b.improvement_pct(cost),
            100.0 * (1.0 - b.ideal / b.unicast.max(1e-9))
        );
    }

    // ------------------------------------------------------------------
    // Covering optimization: subscriptions covered by a broader one at
    // the same node never change node-level delivery; prune them
    // before preprocessing.
    println!("\n== ablation 6: subscription covering prune ==");
    {
        let outcome = workload::prune_covered(&scenario.workload.subscriptions);
        println!(
            "  {} of {} subscriptions covered ({}%)",
            outcome.removed,
            scenario.workload.subscriptions.len(),
            outcome.removed * 100 / scenario.workload.subscriptions.len().max(1)
        );
        let grid = scenario.grid();
        let probs = pubsub_core::CellProbability::from_mass_fn(&grid, |r| scenario.density.mass(r));
        let pruned_rects: Vec<geometry::Rect> =
            outcome.kept.iter().map(|s| s.rect.clone()).collect();
        let fw_full = pubsub_core::GridFramework::build(
            grid.clone(),
            &scenario.rects,
            &probs,
            Some(max_cells),
        );
        let fw_pruned =
            pubsub_core::GridFramework::build(grid, &pruned_rects, &probs, Some(max_cells));
        println!(
            "  hyper-cell input: {} (full) vs {} (pruned)",
            fw_full.hypercells().len(),
            fw_pruned.hypercells().len()
        );
        // Note: delivery through the pruned framework needs the pruned
        // workload's membership; we report only the preprocessing-side
        // effect here, which is where the win lives.
    }

    // ------------------------------------------------------------------
    // The paper: "This justifies the need for the implementation of
    // outlier removal algorithms for detection of cells that have
    // rather unique combination of subscribers" (left as future work
    // there; implemented here).
    println!("\n== ablation 4: outlier removal before clustering ==");
    println!("  {:>10} {:>8} {:>13}", "dropped", "cells", "improvement%");
    for fraction in [0.0, 0.05, 0.1, 0.2, 0.4] {
        let filtered = fw.remove_outliers(fraction);
        let clustering = forgy.cluster(&filtered, k);
        let cost = evaluator.grid_clustering_cost(
            &filtered,
            &clustering,
            0.0,
            MulticastMode::NetworkSupported,
        );
        println!(
            "  {fraction:>10.2} {:>8} {:>13.1}",
            filtered.hypercells().len(),
            baselines.improvement_pct(cost)
        );
    }
}
