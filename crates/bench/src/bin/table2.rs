//! Regenerates Table 2 of the paper: unicast / broadcast / ideal
//! multicast costs with no regionalism.
//!
//! ```text
//! cargo run --release -p pubsub-bench --bin table2 [-- --scale quick|medium|paper]
//! ```

use pubsub_bench::{csv_requested, Scale};
use sim::experiments::{paper_table2_specs, table_rows};
use sim::report::{render_table, render_table_csv};

fn main() {
    let scale = Scale::from_args();
    let specs = paper_table2_specs();
    let (specs, events) = match scale {
        Scale::Quick => (specs[..6].to_vec(), 30),
        Scale::Medium => (specs, 100),
        Scale::Paper => (specs, 500),
    };
    let rows = table_rows(0.0, &specs, events, 2);
    if csv_requested() {
        print!("{}", render_table_csv(&rows));
    } else {
        print!(
            "{}",
            render_table("Table 2: mean per-event cost, no regionalism", &rows)
        );
    }
}
