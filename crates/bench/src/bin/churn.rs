//! Churn benchmark: incremental vs full-rebuild rebalance latency.
//!
//! Emits `results/BENCH_churn.json` (machine-readable) and a human
//! table on stdout.
//!
//! ```text
//! cargo run --release -p pubsub-bench --bin churn [-- --scale quick|medium|paper]
//! ```
//!
//! The scenario models a large stable population with a regionally
//! concentrated churn front (the common broker pattern: most interest
//! is long-lived, updates cluster around a hot key range). Each epoch
//! resubscribes 1% of the population — subscriptions whose rectangles
//! sit inside the hot sub-range — and then rebalances twice from the
//! same state: once through the incremental pipeline (delta
//! rasterization, membership interning, distance-row reuse, warm-seeded
//! K-means) and once through the full cold rebuild, by running two
//! [`DynamicClustering`]s with opposite dirty thresholds in lockstep.
//! Both paths are verified bit-identical every epoch; the JSON records
//! per-epoch latencies, the delta statistics, and the R-tree matching
//! throughput (events/sec) over the final population.

use std::fmt::Write as _;
use std::time::Instant;

use geometry::{Grid, Interval, Point, Rect};
use pubsub_bench::Scale;
use pubsub_core::{
    parallel, CellProbability, DynamicClustering, KMeans, KMeansVariant, SubscriptionId,
    SubscriptionIndex, Validator,
};
use rand::prelude::*;

/// Fraction of the keyspace holding the churn front. Churning
/// rectangles are narrow, so the front covers a few dozen of the grid
/// cells and the rest of the framework passes through each delta
/// untouched.
const HOT_REGION: f64 = 0.02;
/// Fraction of the population resubscribed per epoch.
const CHURN_FRACTION: f64 = 0.01;
const GRID_CELLS: usize = 2048;
const GROUPS: usize = 16;

struct EpochRecord {
    n: usize,
    epoch: usize,
    incremental_ms: f64,
    full_ms: f64,
    changed_slots: usize,
    dirty_cells: usize,
    changed_hypercells: usize,
    unchanged_hypercells: usize,
    reused_distances: usize,
    moves: usize,
    identical: bool,
}

fn random_rect(
    rng: &mut StdRng,
    lo_range: std::ops::Range<f64>,
    width_range: std::ops::Range<f64>,
) -> Rect {
    let lo = rng.gen_range(lo_range);
    let width = rng.gen_range(width_range);
    Rect::new(vec![Interval::new(lo, (lo + width).min(1.0)).unwrap()])
}

/// A fresh churn-front rectangle: narrow and inside the hot region, so
/// the dirty cell set stays a small slice of the grid.
fn hot_rect(rng: &mut StdRng) -> Rect {
    random_rect(rng, 0.0..HOT_REGION * 0.6, 0.002..0.005)
}

/// Bit-exact observable state: hyper-cell and group snapshots with
/// probabilities as raw bits.
type Snapshot = (Vec<(Vec<usize>, u64)>, Vec<(Vec<usize>, u64)>);

fn snapshot(s: &DynamicClustering) -> Snapshot {
    let hcs = s
        .framework()
        .hypercells()
        .iter()
        .map(|h| (h.members.iter().collect(), h.prob.to_bits()))
        .collect();
    let groups = s
        .clustering()
        .groups()
        .iter()
        .map(|g| (g.hypercells.clone(), g.prob.to_bits()))
        .collect();
    (hcs, groups)
}

fn main() {
    let scale = Scale::from_args();
    let (populations, epochs): (Vec<usize>, usize) = match scale {
        Scale::Quick => (vec![1_000], 2),
        Scale::Medium => (vec![1_000, 10_000], 4),
        Scale::Paper => (vec![1_000, 10_000, 100_000], 4),
    };
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = parallel::num_threads();

    println!(
        "{:>8} {:>6} {:>12} {:>10} {:>9} {:>7} {:>9} {:>9}   ({} hardware thread(s), {} resolved worker(s))",
        "n",
        "epoch",
        "inc ms",
        "full ms",
        "speedup",
        "dirty",
        "reusedD",
        "identical",
        host_threads,
        workers
    );

    let mut records: Vec<EpochRecord> = Vec::new();
    let mut throughput: Vec<(usize, f64)> = Vec::new();
    for &n in &populations {
        let grid = Grid::cube(0.0, 1.0, 1, GRID_CELLS).unwrap();
        let probs = CellProbability::uniform(&grid);
        let mut rng = StdRng::seed_from_u64(2002 + n as u64);

        // Stable population: uniform narrow rectangles; remember which
        // ids live inside the hot region — those are the churners.
        let mut rects = Vec::with_capacity(n);
        let mut hot_ids = Vec::new();
        for i in 0..n {
            let r = if i * 10 < n {
                // Guarantee the hot region is populated at every scale.
                hot_rect(&mut rng)
            } else {
                random_rect(&mut rng, 0.0..0.98, 0.01..0.02)
            };
            if r.interval(0).hi() <= HOT_REGION {
                hot_ids.push(i);
            }
            rects.push(r);
        }

        let alg = KMeans::new(KMeansVariant::MacQueen);
        let k = GROUPS.min(n);
        let mut inc = DynamicClustering::new(grid.clone(), probs.clone(), alg, k)
            .with_max_dirty(f64::INFINITY);
        let mut full = DynamicClustering::new(grid, probs, alg, k).with_max_dirty(0.0);
        for r in &rects {
            inc.subscribe(r.clone());
            full.subscribe(r.clone());
        }
        // Warm both instances: the first rebalance is a cold build on
        // either path and also materializes the shared distance matrix.
        inc.rebalance();
        full.rebalance();
        assert_eq!(snapshot(&inc), snapshot(&full), "cold builds disagree");

        let churners = ((n as f64 * CHURN_FRACTION) as usize).clamp(1, hot_ids.len());
        for epoch in 0..epochs {
            // Identical churn against both instances: resubscribe
            // `churners` hot-region ids to fresh hot-region rectangles.
            let mut moves_spec = Vec::with_capacity(churners);
            for c in 0..churners {
                let id = hot_ids[(epoch * churners + c) % hot_ids.len()];
                moves_spec.push((id, hot_rect(&mut rng)));
            }
            for (id, r) in &moves_spec {
                inc.resubscribe(SubscriptionId(*id), r.clone()).unwrap();
                full.resubscribe(SubscriptionId(*id), r.clone()).unwrap();
                rects[*id] = r.clone();
            }

            let start = Instant::now();
            let inc_moves = inc.rebalance();
            let incremental_ms = start.elapsed().as_secs_f64() * 1e3;
            let stats = inc.last_rebalance();
            assert!(stats.incremental, "threshold +inf must take the delta path");

            let start = Instant::now();
            let full_moves = full.rebalance();
            let full_ms = start.elapsed().as_secs_f64() * 1e3;
            assert!(!full.last_rebalance().incremental || stats.changed_slots == 0);

            let identical = snapshot(&inc) == snapshot(&full) && inc_moves == full_moves;
            assert!(identical, "paths diverged at n={n} epoch={epoch}");

            // Explicit structural audit of both maintenance paths —
            // release builds skip the debug-assert audit inside
            // `rebalance`, so the bench re-runs it here every epoch.
            let mut audit = Validator::new();
            audit
                .check_framework(inc.framework())
                .check_clustering(inc.framework(), inc.clustering())
                .check_framework(full.framework())
                .check_clustering(full.framework(), full.clustering());
            audit.assert_clean("churn epoch audit");

            println!(
                "{n:>8} {epoch:>6} {incremental_ms:>12.2} {full_ms:>10.2} {:>8.1}x {:>7} {:>9} {identical:>9}",
                full_ms / incremental_ms.max(1e-9),
                stats.dirty_cells,
                stats.reused_distances,
            );
            records.push(EpochRecord {
                n,
                epoch,
                incremental_ms,
                full_ms,
                changed_slots: stats.changed_slots,
                dirty_cells: stats.dirty_cells,
                changed_hypercells: snapshot(&inc).0.len() - stats.unchanged_hypercells,
                unchanged_hypercells: stats.unchanged_hypercells,
                reused_distances: stats.reused_distances,
                moves: inc_moves,
                identical,
            });
        }

        // Matching throughput over the final population, allocation-free
        // per event via `matching_into`.
        let index = SubscriptionIndex::build(&rects);
        let num_events = match scale {
            Scale::Quick => 2_000,
            _ => 20_000,
        };
        let events: Vec<Point> = (0..num_events)
            .map(|_| Point::new(vec![rng.gen_range(0.0..1.0)]))
            .collect();
        let mut matched = Vec::new();
        let mut total = 0usize;
        let start = Instant::now();
        for ev in &events {
            index.matching_into(ev, &mut matched);
            total += matched.len();
        }
        let secs = start.elapsed().as_secs_f64();
        let eps = num_events as f64 / secs.max(1e-12);
        println!(
            "{n:>8} matching: {eps:>12.0} events/sec ({total} matches over {num_events} events)"
        );
        throughput.push((n, eps));
    }

    // Headline: mean speedup per population size.
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"generated_by\": \"cargo run --release -p pubsub-bench --bin churn -- --scale {}\",",
        match scale {
            Scale::Quick => "quick",
            Scale::Medium => "medium",
            Scale::Paper => "paper",
        }
    );
    let _ = writeln!(json, "  \"host_threads\": {host_threads},");
    let _ = writeln!(json, "  \"workers\": {workers},");
    let _ = writeln!(
        json,
        "  \"grid_cells\": {GRID_CELLS}, \"groups\": {GROUPS}, \"churn_fraction\": {CHURN_FRACTION}, \"hot_region\": {HOT_REGION},"
    );
    json.push_str(
        "  \"note\": \"per-epoch rebalance latency after resubscribing 1% of the population \
         inside the hot region; 'identical' means the incremental and full paths produced \
         bit-equal frameworks, clusterings and move counts; workers = resolved \
         pubsub_core::parallel worker count (PUBSUB_THREADS or detected CPUs), the thread \
         count the parallel stages actually ran with\",\n",
    );
    json.push_str("  \"speedup_by_n\": {");
    let mut first = true;
    for &n in &populations {
        let rs: Vec<&EpochRecord> = records.iter().filter(|r| r.n == n).collect();
        let inc: f64 = rs.iter().map(|r| r.incremental_ms).sum::<f64>() / rs.len() as f64;
        let full: f64 = rs.iter().map(|r| r.full_ms).sum::<f64>() / rs.len() as f64;
        let _ = write!(
            json,
            "{}\"{}\": {:.2}",
            if first { "" } else { ", " },
            n,
            full / inc.max(1e-9)
        );
        first = false;
    }
    json.push_str("},\n");
    json.push_str("  \"matching\": [\n");
    for (i, (n, eps)) in throughput.iter().enumerate() {
        let _ = write!(json, "    {{\"n\": {n}, \"events_per_sec\": {eps:.0}}}");
        json.push_str(if i + 1 < throughput.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");
    json.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"n\": {}, \"epoch\": {}, \"incremental_ms\": {:.3}, \"full_ms\": {:.3}, \
             \"changed_slots\": {}, \"dirty_cells\": {}, \"changed_hypercells\": {}, \
             \"unchanged_hypercells\": {}, \"reused_distances\": {}, \"moves\": {}, \
             \"identical\": {}}}",
            r.n,
            r.epoch,
            r.incremental_ms,
            r.full_ms,
            r.changed_slots,
            r.dirty_cells,
            r.changed_hypercells,
            r.unchanged_hypercells,
            r.reused_distances,
            r.moves,
            r.identical
        );
        json.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_churn.json", json).expect("write BENCH_churn.json");
    println!();
    println!("wrote results/BENCH_churn.json ({} records)", records.len());
}
