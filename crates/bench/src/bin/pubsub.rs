//! `pubsub` — command-line front end to the whole pipeline: generate a
//! topology and workload, run a clustering algorithm, and report
//! delivery costs, without writing any code.
//!
//! ```text
//! pubsub topology  [--nodes 100|300|600] [--seed N]
//! pubsub baselines [--nodes ...] [--subs N] [--events N]
//!                  [--regionalism R] [--dist uniform|gaussian] [--seed N]
//! pubsub cluster   [--algorithm forgy|kmeans|mst|pairs|approx-pairs|noloss]
//!                  [--k K] [--subs N] [--events N] [--cells N]
//!                  [--modes 1|4|9] [--app|--sparse] [--threshold T] [--seed N]
//! pubsub export    [--subs-file PATH] [--events-file PATH]
//!                  [--subs N] [--events N] [--seed N]
//! pubsub replay    --subs-file PATH --events-file PATH
//!                  [--nodes 100|300|600] [--k K] [--bins B] [--seed N]
//! ```
//!
//! `export` writes a generated workload as CSV traces; `replay` runs
//! the full pipeline on externally supplied traces (the paper's
//! Section 6.3: real stock data can be fed as the event stream).
//!
//! Examples:
//!
//! ```text
//! cargo run --release -p pubsub-bench --bin pubsub -- cluster --algorithm forgy --k 50
//! cargo run --release -p pubsub-bench --bin pubsub -- baselines --nodes 300 --regionalism 0.4
//! ```

use std::process::exit;

use netsim::{Topology, TransitStubParams};
use pubsub_core::{
    ClusteringAlgorithm, KMeans, KMeansVariant, MstClustering, NoLossConfig, PairsStrategy,
    PairwiseGrouping,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::{Evaluator, MulticastMode, StockScenario};
use workload::{PredicateDist, PublicationModes, Section3Model, StockModel};

/// Minimal `--flag value` argument map.
struct Args {
    command: String,
    flags: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Args {
    fn parse() -> Args {
        let mut it = std::env::args().skip(1);
        let command = it.next().unwrap_or_else(|| {
            usage();
            exit(2);
        });
        let mut flags = Vec::new();
        let mut switches = Vec::new();
        let rest: Vec<String> = it.collect();
        let mut i = 0;
        while i < rest.len() {
            let key = rest[i].trim_start_matches("--").to_string();
            if i + 1 < rest.len() && !rest[i + 1].starts_with("--") {
                flags.push((key, rest[i + 1].clone()));
                i += 2;
            } else {
                switches.push(key);
                i += 1;
            }
        }
        Args {
            command,
            flags,
            switches,
        }
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.flags.iter().find(|(k, _)| k == key) {
            Some((_, v)) => v.parse().unwrap_or_else(|_| {
                eprintln!("invalid value for --{key}: {v}");
                exit(2);
            }),
            None => default,
        }
    }

    fn get_str(&self, key: &str, default: &str) -> String {
        self.flags
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| default.to_string())
    }

    fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

fn usage() {
    eprintln!("usage: pubsub <topology|baselines|cluster|export|replay> [--flag value]...");
    eprintln!("run with a command and no flags for sensible defaults;");
    eprintln!("see the module docs (or the source header) for the flag list.");
}

fn topo_params(nodes: usize) -> TransitStubParams {
    match nodes {
        100 => TransitStubParams::paper_100_nodes(),
        300 => TransitStubParams::paper_300_nodes(),
        600 => TransitStubParams::paper_section51(),
        other => {
            eprintln!("--nodes must be 100, 300 or 600 (got {other})");
            exit(2);
        }
    }
}

fn cmd_topology(args: &Args) {
    let nodes: usize = args.get("nodes", 600);
    let seed: u64 = args.get("seed", 1);
    let params = topo_params(nodes);
    let topo = Topology::generate(&params, &mut StdRng::seed_from_u64(seed));
    println!(
        "topology: {} nodes, {} edges, {} transit blocks, {} stubs",
        topo.num_nodes(),
        topo.graph().num_edges(),
        topo.num_blocks(),
        topo.stubs().len()
    );
    println!(
        "total edge cost {:.0}, connected: {}",
        topo.graph().total_cost(),
        topo.graph().is_connected()
    );
    let stats = topo.distance_stats(5);
    println!(
        "cost-weighted diameter ~{:.0}, mean distance ~{:.1} (sampled {} sources)",
        stats.diameter, stats.mean_distance, stats.sampled_sources
    );
}

fn cmd_baselines(args: &Args) {
    let nodes: usize = args.get("nodes", 600);
    let subs: usize = args.get("subs", 1000);
    let events: usize = args.get("events", 200);
    let regionalism: f64 = args.get("regionalism", 0.4);
    let seed: u64 = args.get("seed", 1);
    let dist = match args.get_str("dist", "uniform").as_str() {
        "uniform" => PredicateDist::Uniform,
        "gaussian" => PredicateDist::Gaussian,
        other => {
            eprintln!("--dist must be uniform or gaussian (got {other})");
            exit(2);
        }
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let topo = Topology::generate(&topo_params(nodes), &mut rng);
    let model = Section3Model {
        regionalism,
        dist,
        num_subscriptions: subs,
        num_events: events,
    };
    let w = model.generate(&topo, &mut rng);
    let mut ev = Evaluator::new(&topo, &w);
    let b = ev.baseline_costs();
    println!("mean cost per event over {events} events:");
    println!("  unicast   {:>10.0}", b.unicast);
    println!("  broadcast {:>10.0}", b.broadcast);
    println!("  ideal     {:>10.0}", b.ideal);
}

fn cmd_cluster(args: &Args) {
    let k: usize = args.get("k", 50);
    let subs: usize = args.get("subs", 1000);
    let events: usize = args.get("events", 200);
    let cells: usize = args.get("cells", 2000);
    let seed: u64 = args.get("seed", 2002);
    let threshold: f64 = args.get("threshold", 0.0);
    let modes = match args.get::<usize>("modes", 1) {
        1 => PublicationModes::One,
        4 => PublicationModes::Four,
        9 => PublicationModes::Nine,
        other => {
            eprintln!("--modes must be 1, 4 or 9 (got {other})");
            exit(2);
        }
    };
    let mode = if args.has("app") {
        MulticastMode::ApplicationLevel
    } else if args.has("sparse") {
        MulticastMode::SparseMode
    } else {
        MulticastMode::NetworkSupported
    };
    let model = StockModel::default()
        .with_sizes(subs, events)
        .with_modes(modes);
    let scenario = StockScenario::generate(
        &model,
        &TransitStubParams::paper_section51(),
        (events * 2).max(200),
        seed,
    );
    let mut ev = Evaluator::new(&scenario.topo, &scenario.workload);
    let b = ev.baseline_costs();
    let name = args.get_str("algorithm", "forgy");
    let cost = if name == "noloss" || name == "no-loss" {
        let cfg = NoLossConfig {
            max_rects: cells,
            iterations: 4,
            ..NoLossConfig::default()
        };
        let nl = scenario.noloss(&cfg, k);
        ev.noloss_cost(&nl, mode)
    } else {
        let alg: Box<dyn ClusteringAlgorithm> = match name.as_str() {
            "kmeans" => Box::new(KMeans::new(KMeansVariant::MacQueen)),
            "forgy" => Box::new(KMeans::new(KMeansVariant::Forgy)),
            "mst" => Box::new(MstClustering::new()),
            "pairs" => Box::new(PairwiseGrouping::new(PairsStrategy::Exact)),
            "approx-pairs" => Box::new(PairwiseGrouping::new(PairsStrategy::Approximate { seed })),
            other => {
                eprintln!(
                    "--algorithm must be kmeans|forgy|mst|pairs|approx-pairs|noloss (got {other})"
                );
                exit(2);
            }
        };
        let fw = scenario.framework(cells);
        let clustering = alg.cluster(&fw, k);
        ev.grid_clustering_cost(&fw, &clustering, threshold, mode)
    };
    println!(
        "{name} with K = {k} ({}):",
        match mode {
            MulticastMode::NetworkSupported => "network-supported (dense) multicast",
            MulticastMode::ApplicationLevel => "application-level multicast",
            MulticastMode::SparseMode => "sparse-mode (shared-tree) multicast",
        }
    );
    println!("  unicast     {:>10.0}", b.unicast);
    println!("  broadcast   {:>10.0}", b.broadcast);
    println!("  clustered   {:>10.0}", cost);
    println!("  ideal       {:>10.0}", b.ideal);
    println!(
        "  improvement {:>9.1}%  (0% = unicast, 100% = ideal)",
        b.improvement_pct(cost)
    );
}

fn cmd_export(args: &Args) {
    let subs: usize = args.get("subs", 1000);
    let events: usize = args.get("events", 500);
    let seed: u64 = args.get("seed", 2002);
    let subs_path = args.get_str("subs-file", "subscriptions.csv");
    let events_path = args.get_str("events-file", "events.csv");
    let mut rng = StdRng::seed_from_u64(seed);
    let topo = Topology::generate(&TransitStubParams::paper_section51(), &mut rng);
    let model = StockModel::default().with_sizes(subs, events);
    let w = model.generate(&topo, &mut rng);
    let write = |path: &str, f: &dyn Fn(&mut Vec<u8>) -> std::io::Result<()>| {
        let mut buf = Vec::new();
        f(&mut buf).expect("in-memory write cannot fail");
        std::fs::write(path, buf).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        });
    };
    write(&subs_path, &|buf| {
        workload::io::write_subscriptions(buf, &w.subscriptions)
    });
    write(&events_path, &|buf| {
        workload::io::write_events(buf, &w.events)
    });
    println!(
        "wrote {} subscriptions to {subs_path} and {} events to {events_path}",
        w.subscriptions.len(),
        w.events.len()
    );
    println!("(node ids refer to the 600-node topology with seed {seed})");
}

fn cmd_replay(args: &Args) {
    let nodes: usize = args.get("nodes", 600);
    let k: usize = args.get("k", 50);
    let bins: usize = args.get("bins", 12);
    let seed: u64 = args.get("seed", 2002);
    let subs_path = args.get_str("subs-file", "");
    let events_path = args.get_str("events-file", "");
    if subs_path.is_empty() || events_path.is_empty() {
        eprintln!("replay needs --subs-file and --events-file");
        exit(2);
    }
    let read = |path: &str| {
        std::fs::read(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(1);
        })
    };
    let subscriptions = workload::io::read_subscriptions(read(&subs_path).as_slice())
        .unwrap_or_else(|e| {
            eprintln!("{subs_path}: {e}");
            exit(1);
        });
    let events = workload::io::read_events(read(&events_path).as_slice()).unwrap_or_else(|e| {
        eprintln!("{events_path}: {e}");
        exit(1);
    });
    let mut rng = StdRng::seed_from_u64(seed);
    let topo = Topology::generate(&topo_params(nodes), &mut rng);
    for s in &subscriptions {
        if s.node.index() >= topo.num_nodes() {
            eprintln!(
                "subscription node {} does not exist in the {}-node topology",
                s.node,
                topo.num_nodes()
            );
            exit(1);
        }
    }
    let (bounds, bin_counts) = workload::io::infer_bounds(&subscriptions, &events, bins)
        .unwrap_or_else(|e| {
            eprintln!("cannot infer grid bounds from the trace: {e}");
            exit(1);
        });
    let workload = workload::Workload {
        bounds: bounds.clone(),
        suggested_bins: bin_counts.clone(),
        subscriptions,
        events,
    };
    let mut ev = Evaluator::new(&topo, &workload);
    let b = ev.baseline_costs();
    let grid = geometry::Grid::new(bounds, bin_counts).expect("inferred grid is valid");
    let sample: Vec<geometry::Point> = workload.events.iter().map(|e| e.point.clone()).collect();
    let probs = pubsub_core::CellProbability::empirical(&grid, &sample);
    let rects: Vec<geometry::Rect> = workload
        .subscriptions
        .iter()
        .map(|s| s.rect.clone())
        .collect();
    let fw = pubsub_core::GridFramework::build(grid, &rects, &probs, Some(6000));
    let clustering = KMeans::new(KMeansVariant::Forgy).cluster(&fw, k);
    let cost = ev.grid_clustering_cost(&fw, &clustering, 0.0, MulticastMode::NetworkSupported);
    println!(
        "replayed {} events against {} subscriptions on the {}-node topology:",
        workload.events.len(),
        workload.subscriptions.len(),
        topo.num_nodes()
    );
    println!("  unicast     {:>10.0}", b.unicast);
    println!("  broadcast   {:>10.0}", b.broadcast);
    println!("  forgy K={k:<4}{:>10.0}", cost);
    println!("  ideal       {:>10.0}", b.ideal);
    println!(
        "  improvement {:>9.1}%  (0% = unicast, 100% = ideal)",
        b.improvement_pct(cost)
    );
}

fn main() {
    let args = Args::parse();
    match args.command.as_str() {
        "topology" => cmd_topology(&args),
        "baselines" => cmd_baselines(&args),
        "cluster" => cmd_cluster(&args),
        "export" => cmd_export(&args),
        "replay" => cmd_replay(&args),
        "help" | "--help" | "-h" => usage(),
        other => {
            eprintln!("unknown command: {other}");
            usage();
            exit(2);
        }
    }
}
