//! Regenerates Figure 7 of the paper: improvement percentage over
//! unicast as a function of the number of multicast groups K, for every
//! clustering algorithm, under network-supported and application-level
//! multicast.
//!
//! ```text
//! cargo run --release -p pubsub-bench --bin fig7 [-- --scale quick|medium|paper]
//! ```

use pubsub_bench::{csv_requested, Scale};
use sim::experiments::{fig7, Fig7Config};
use sim::report::{render_group_sweep, render_group_sweep_csv};

fn main() {
    let cfg = match Scale::from_args() {
        Scale::Quick => Fig7Config::quick(),
        Scale::Medium => Fig7Config::medium(),
        Scale::Paper => Fig7Config::paper(),
    };
    let res = fig7(&cfg);
    if csv_requested() {
        print!("{}", render_group_sweep_csv(&res));
    } else {
        print!(
            "{}",
            render_group_sweep("Figure 7: improvement vs number of groups", &res)
        );
    }
}
