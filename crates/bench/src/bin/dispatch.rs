//! Dispatch benchmark: compiled `DispatchPlan` vs the uncompiled
//! per-event matching path.
//!
//! Emits `results/BENCH_dispatch.json` (machine-readable) and a human
//! table on stdout.
//!
//! ```text
//! cargo run --release -p pubsub-bench --bin dispatch [-- --scale quick|medium|paper]
//! ```
//!
//! Three grid measurements per population size:
//!
//! * **serve**: the full per-event pipeline. Old path = R-tree
//!   `matching_into` + `BitSet::from_members` + `GridMatcher::match_event`
//!   (what `sim`'s evaluator did per event before the plan); plan path =
//!   `DispatchPlan::serve` with a reusable scratch (cell-membership
//!   candidate pruning, zero allocation).
//! * **batched serve** (headline): `DispatchPlan::serve_batch` — the
//!   cell-bucketed SoA kernel — over fixed-size batches, asserted
//!   bit-identical to scalar serve on the whole stream *and* through
//!   the sim-style fixed-chunk decomposition at 1 and 8 threads.
//! * **match-only**: decision step alone over precomputed interested
//!   sets — `GridMatcher::match_event` vs `DispatchPlan::dispatch` —
//!   over a capped event subset (the precomputed `BitSet`s are large at
//!   `N = 100k`).
//!
//! Plus a No-Loss measurement: the pre-plan matcher (allocating
//! `RTree::stab` + `BitSet::count()` inside the comparator,
//! reconstructed here from the public API) vs the allocation-free
//! `NoLossClustering::match_event` / `NoLossDispatchPlan`.
//!
//! Every path's decisions are asserted identical before timings are
//! reported.

use std::fmt::Write as _;
use std::time::Instant;

use geometry::{Grid, Interval, Point, Rect};
use pubsub_bench::{LatencyHistogram, LatencySummary, Scale};
use pubsub_core::{
    parallel, BatchScratch, BitSet, CellProbability, ClusteringAlgorithm, Delivery, DispatchPlan,
    DispatchScratch, GridFramework, GridMatcher, KMeans, KMeansVariant, NoLossClustering,
    NoLossConfig, NoLossDispatchPlan, SubscriptionIndex, Validator,
};
use rand::prelude::*;
use spatial::RTree;

const GRID_CELLS: usize = 2048;
const GROUPS: usize = 64;
const THRESHOLD: f64 = 0.15;
/// Fraction of the keyspace holding the popular range (a dense interest
/// hot spot, as in the stock workload's popular symbols).
const HOT_REGION: f64 = 0.05;
/// Cap on events with precomputed interested `BitSet`s: at
/// `N = 100_000` each set is ~12.5 KB, so the match-only phase bounds
/// its working set instead of materializing one per event.
const MATCH_ONLY_EVENTS: usize = 5_000;
/// Events per `serve_batch` call in the batched-serve measurement —
/// large enough that the hot cells form big buckets, small enough that
/// the SoA buffers stay cache-resident.
const SERVE_BATCH: usize = 8_192;

struct GridRecord {
    n: usize,
    events: usize,
    old_serve_eps: f64,
    plan_serve_eps: f64,
    batched_serve_eps: f64,
    old_match_eps: f64,
    plan_match_eps: f64,
    match_events: usize,
    serve_latency: LatencySummary,
}

struct NoLossRecord {
    n: usize,
    regions: usize,
    events: usize,
    old_eps: f64,
    plan_eps: f64,
}

fn random_rect(rng: &mut StdRng) -> Rect {
    // 30% of interest concentrates in the hot region.
    let (lo, width) = if rng.gen_bool(0.3) {
        (
            rng.gen_range(0.0..HOT_REGION * 0.8),
            rng.gen_range(0.002..0.01),
        )
    } else {
        (rng.gen_range(0.0..0.98), rng.gen_range(0.005..0.02))
    };
    Rect::new(vec![Interval::new(lo, (lo + width).min(1.0)).unwrap()])
}

/// The pre-plan No-Loss matcher, reconstructed from the public API:
/// allocate the candidate list via `stab`, re-count memberships inside
/// the comparator.
fn legacy_noloss_match(tree: &RTree<usize>, nl: &NoLossClustering, p: &Point) -> Option<usize> {
    tree.stab(p).into_iter().copied().max_by(|&a, &b| {
        let (ra, rb) = (&nl.regions()[a], &nl.regions()[b]);
        ra.subscribers
            .count()
            .cmp(&rb.subscribers.count())
            .then_with(|| {
                ra.weight
                    .partial_cmp(&rb.weight)
                    .expect("weight is never NaN")
            })
            .then(b.cmp(&a))
    })
}

fn main() {
    let scale = Scale::from_args();
    let (populations, num_events): (Vec<usize>, usize) = match scale {
        Scale::Quick => (vec![2_000], 20_000),
        Scale::Medium => (vec![10_000, 100_000], 100_000),
        Scale::Paper => (vec![10_000, 100_000], 200_000),
    };
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = parallel::num_threads();

    println!(
        "{:>8} {:>8} {:>14} {:>14} {:>14} {:>9} {:>14} {:>14} {:>9}   ({} hardware thread(s), {} resolved worker(s))",
        "n",
        "events",
        "old serve e/s",
        "plan serve e/s",
        "batch serve e/s",
        "b-speedup",
        "old match e/s",
        "plan match e/s",
        "speedup",
        host_threads,
        workers
    );

    let mut grid_records: Vec<GridRecord> = Vec::new();
    let mut noloss_records: Vec<NoLossRecord> = Vec::new();
    for &n in &populations {
        let mut rng = StdRng::seed_from_u64(2002 + n as u64);
        let subs: Vec<Rect> = (0..n).map(|_| random_rect(&mut rng)).collect();
        let events: Vec<Point> = (0..num_events)
            .map(|_| {
                // Publication density mirrors the interest skew.
                let x = if rng.gen_bool(0.3) {
                    rng.gen_range(0.0..HOT_REGION)
                } else {
                    rng.gen_range(0.0..1.0)
                };
                Point::new(vec![x])
            })
            .collect();

        let grid = Grid::cube(0.0, 1.0, 1, GRID_CELLS).unwrap();
        let probs = CellProbability::uniform(&grid);
        let fw = GridFramework::build(grid, &subs, &probs, Some(GRID_CELLS));
        let clustering = KMeans::new(KMeansVariant::MacQueen).cluster(&fw, GROUPS.min(n));
        let matcher = GridMatcher::new(&fw, &clustering).with_threshold(THRESHOLD);
        let plan = DispatchPlan::compile(&fw, &clustering)
            .with_threshold(THRESHOLD)
            .with_subscriptions(&subs);
        let index = SubscriptionIndex::build(&subs);

        // Structural audit before any timing: the framework, the
        // clustering and the compiled plan must agree exactly, so a
        // compilation bug fails loudly instead of skewing the numbers.
        let mut audit = Validator::new();
        audit
            .check_framework(&fw)
            .check_clustering(&fw, &clustering)
            .check_dispatch_plan(&fw, &clustering, &plan);
        audit.assert_clean("dispatch bench audit");

        // --- Serve path: old (index + BitSet + matcher) vs plan.serve.
        // One untimed pass checks agreement and warms every buffer; the
        // scalar decisions become the reference for the batched kernel.
        let mut matched: Vec<usize> = Vec::new();
        let mut scratch = DispatchScratch::new();
        let mut serve_decisions: Vec<Delivery> = Vec::with_capacity(events.len());
        for p in &events {
            index.matching_into(p, &mut matched);
            let interested = BitSet::from_members(n, matched.iter().copied());
            let old = matcher.match_event(p, &interested);
            let new = plan.serve(p, &mut scratch);
            assert_eq!(old, new, "serve paths disagree at {p:?}");
            assert_eq!(
                scratch.interested(),
                &matched[..],
                "interested sets disagree"
            );
            serve_decisions.push(new);
        }

        let start = Instant::now();
        for p in &events {
            index.matching_into(p, &mut matched);
            let interested = BitSet::from_members(n, matched.iter().copied());
            std::hint::black_box(matcher.match_event(p, &interested));
        }
        let old_serve_eps = events.len() as f64 / start.elapsed().as_secs_f64().max(1e-12);

        let start = Instant::now();
        for p in &events {
            std::hint::black_box(plan.serve(p, &mut scratch));
        }
        let plan_serve_eps = events.len() as f64 / start.elapsed().as_secs_f64().max(1e-12);

        // Per-event serve-latency percentiles (separate pass so the
        // per-event `Instant` reads don't skew the throughput number),
        // through the same log-bucketed histogram the service bin uses.
        let mut serve_hist = LatencyHistogram::new();
        for p in &events {
            let t = Instant::now();
            std::hint::black_box(plan.serve(p, &mut scratch));
            serve_hist.record(u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        let serve_latency = serve_hist.summary();

        // --- Batched serve: the cell-bucketed SoA kernel over
        // fixed-size batches. Warm pass asserts bit-identity with the
        // scalar decisions; a second check runs the sim-style fixed
        // 64-event chunk decomposition at 1 and 8 forced threads.
        let mut bscratch = BatchScratch::new();
        let mut batched: Vec<Delivery> = Vec::with_capacity(events.len());
        let run_batched = |scratch: &mut BatchScratch, out: &mut Vec<Delivery>| {
            out.clear();
            let mut start = 0;
            while start < events.len() {
                let end = (start + SERVE_BATCH).min(events.len());
                plan.serve_batch(start..end, |e| &events[e], scratch, out);
                start = end;
            }
        };
        run_batched(&mut bscratch, &mut batched);
        assert_eq!(
            batched, serve_decisions,
            "batched serve diverged from scalar serve"
        );
        for threads in [1, 8] {
            let chunked: Vec<Delivery> = parallel::with_threads(threads, || {
                parallel::par_chunks(events.len(), 64, |range| {
                    let mut s = BatchScratch::new();
                    let mut out = Vec::with_capacity(range.len());
                    plan.serve_batch(range, |e| &events[e], &mut s, &mut out);
                    out
                })
                .into_iter()
                .flatten()
                .collect()
            });
            assert_eq!(
                chunked, serve_decisions,
                "batched serve diverged at {threads} thread(s)"
            );
        }
        let start = Instant::now();
        run_batched(&mut bscratch, &mut batched);
        let batched_serve_eps = events.len() as f64 / start.elapsed().as_secs_f64().max(1e-12);

        // --- Match-only: decision step over precomputed interested sets.
        let match_events = events.len().min(MATCH_ONLY_EVENTS);
        let sets: Vec<BitSet> = events[..match_events]
            .iter()
            .map(|p| {
                index.matching_into(p, &mut matched);
                BitSet::from_members(n, matched.iter().copied())
            })
            .collect();
        for (p, s) in events[..match_events].iter().zip(&sets) {
            assert_eq!(matcher.match_event(p, s), plan.dispatch(p, s));
        }
        // Several timed repetitions: this phase is far cheaper per event.
        let reps = 10;
        let start = Instant::now();
        for _ in 0..reps {
            for (p, s) in events[..match_events].iter().zip(&sets) {
                std::hint::black_box(matcher.match_event(p, s));
            }
        }
        let old_match_eps = (reps * match_events) as f64 / start.elapsed().as_secs_f64().max(1e-12);
        let start = Instant::now();
        for _ in 0..reps {
            for (p, s) in events[..match_events].iter().zip(&sets) {
                std::hint::black_box(plan.dispatch(p, s));
            }
        }
        let plan_match_eps =
            (reps * match_events) as f64 / start.elapsed().as_secs_f64().max(1e-12);

        println!(
            "{n:>8} {:>8} {old_serve_eps:>14.0} {plan_serve_eps:>14.0} {batched_serve_eps:>14.0} {:>8.1}x {old_match_eps:>14.0} {plan_match_eps:>14.0} {:>8.1}x",
            events.len(),
            batched_serve_eps / plan_serve_eps.max(1e-9),
            plan_match_eps / old_match_eps.max(1e-9),
        );
        grid_records.push(GridRecord {
            n,
            events: events.len(),
            old_serve_eps,
            plan_serve_eps,
            batched_serve_eps,
            old_match_eps,
            plan_match_eps,
            match_events,
            serve_latency,
        });
        println!(
            "{n:>8} plan serve latency ns: p50 {} / p99 {} / p999 {} (max {})",
            serve_latency.p50, serve_latency.p99, serve_latency.p999, serve_latency.max
        );

        // --- No-Loss (bounded population: region construction is the
        // expensive part, matching is what we time).
        if n <= 10_000 {
            let nl_subs = &subs[..n.min(5_000)];
            let sample: Vec<Point> = events.iter().take(2_000).cloned().collect();
            let cfg = NoLossConfig {
                max_rects: 400,
                iterations: 2,
                max_candidates_per_round: 200_000,
            };
            let nl = NoLossClustering::build(nl_subs, &sample, &cfg, 64);
            let legacy_tree = RTree::bulk_load(
                1,
                nl.regions()
                    .iter()
                    .enumerate()
                    .map(|(i, r)| (r.rect.clone(), i))
                    .collect(),
            );
            let nl_plan = NoLossDispatchPlan::compile(&nl);
            let mut audit = Validator::new();
            audit.check_noloss(nl_subs, &nl);
            audit.assert_clean("dispatch bench no-loss audit");
            for p in &events {
                let old = legacy_noloss_match(&legacy_tree, &nl, p);
                assert_eq!(old, nl.match_event(p), "no-loss paths disagree at {p:?}");
                assert_eq!(old, nl_plan.match_event(p));
            }
            let start = Instant::now();
            for p in &events {
                std::hint::black_box(legacy_noloss_match(&legacy_tree, &nl, p));
            }
            let old_eps = events.len() as f64 / start.elapsed().as_secs_f64().max(1e-12);
            let start = Instant::now();
            for p in &events {
                std::hint::black_box(nl_plan.match_event(p));
            }
            let plan_eps = events.len() as f64 / start.elapsed().as_secs_f64().max(1e-12);
            println!(
                "{n:>8} no-loss ({} regions): {old_eps:>12.0} -> {plan_eps:>12.0} events/sec ({:.1}x)",
                nl.num_groups(),
                plan_eps / old_eps.max(1e-9)
            );
            noloss_records.push(NoLossRecord {
                n,
                regions: nl.num_groups(),
                events: events.len(),
                old_eps,
                plan_eps,
            });
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"generated_by\": \"cargo run --release -p pubsub-bench --bin dispatch -- --scale {}\",",
        match scale {
            Scale::Quick => "quick",
            Scale::Medium => "medium",
            Scale::Paper => "paper",
        }
    );
    let _ = writeln!(json, "  \"host_threads\": {host_threads},");
    let _ = writeln!(json, "  \"workers\": {workers},");
    let _ = writeln!(
        json,
        "  \"grid_cells\": {GRID_CELLS}, \"groups\": {GROUPS}, \"threshold\": {THRESHOLD}, \"hot_region\": {HOT_REGION}, \"serve_batch\": {SERVE_BATCH},"
    );
    json.push_str(
        "  \"note\": \"serve = full per-event pipeline (interested-set computation + decision): \
         old path allocates a fresh match Vec sort + BitSet per event, plan path is \
         allocation-free via cell-membership candidate pruning; batched = cell-bucketed SoA \
         serve_batch kernel, asserted bit-identical to scalar serve whole-stream and through \
         64-event chunks at 1 and 8 forced threads; match_only = decision step over \
         precomputed interested sets; all paths asserted decision-identical before timing; \
         workers = resolved pubsub_core::parallel worker count\",\n",
    );
    json.push_str("  \"serve_speedup_by_n\": {");
    let mut first = true;
    for r in &grid_records {
        let _ = write!(
            json,
            "{}\"{}\": {:.2}",
            if first { "" } else { ", " },
            r.n,
            r.plan_serve_eps / r.old_serve_eps.max(1e-9)
        );
        first = false;
    }
    json.push_str("},\n");
    json.push_str("  \"batched_speedup_by_n\": {");
    let mut first = true;
    for r in &grid_records {
        let _ = write!(
            json,
            "{}\"{}\": {:.2}",
            if first { "" } else { ", " },
            r.n,
            r.batched_serve_eps / r.plan_serve_eps.max(1e-9)
        );
        first = false;
    }
    json.push_str("},\n");
    json.push_str("  \"batched\": [\n");
    for (i, r) in grid_records.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"n\": {}, \"events\": {}, \"batch\": {SERVE_BATCH}, \
             \"events_per_sec\": {:.0}, \"speedup_vs_plan\": {:.2}, \"speedup_vs_old\": {:.2}, \
             \"identical\": true}}",
            r.n,
            r.events,
            r.batched_serve_eps,
            r.batched_serve_eps / r.plan_serve_eps.max(1e-9),
            r.batched_serve_eps / r.old_serve_eps.max(1e-9),
        );
        json.push_str(if i + 1 < grid_records.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");
    json.push_str("  \"grid\": [\n");
    for (i, r) in grid_records.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"n\": {}, \"events\": {}, \"old_serve_events_per_sec\": {:.0}, \
             \"plan_serve_events_per_sec\": {:.0}, \"serve_speedup\": {:.2}, \
             \"match_only_events\": {}, \"old_match_events_per_sec\": {:.0}, \
             \"plan_match_events_per_sec\": {:.0}, \"match_speedup\": {:.2}, \
             \"plan_serve_latency_ns\": {{\"mean\": {}, \"p50\": {}, \"p90\": {}, \
             \"p99\": {}, \"p999\": {}, \"max\": {}}}, \"identical\": true}}",
            r.n,
            r.events,
            r.old_serve_eps,
            r.plan_serve_eps,
            r.plan_serve_eps / r.old_serve_eps.max(1e-9),
            r.match_events,
            r.old_match_eps,
            r.plan_match_eps,
            r.plan_match_eps / r.old_match_eps.max(1e-9),
            r.serve_latency.mean,
            r.serve_latency.p50,
            r.serve_latency.p90,
            r.serve_latency.p99,
            r.serve_latency.p999,
            r.serve_latency.max,
        );
        json.push_str(if i + 1 < grid_records.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");
    json.push_str("  \"noloss\": [\n");
    for (i, r) in noloss_records.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"n\": {}, \"regions\": {}, \"events\": {}, \"old_events_per_sec\": {:.0}, \
             \"plan_events_per_sec\": {:.0}, \"speedup\": {:.2}, \"identical\": true}}",
            r.n,
            r.regions,
            r.events,
            r.old_eps,
            r.plan_eps,
            r.plan_eps / r.old_eps.max(1e-9),
        );
        json.push_str(if i + 1 < noloss_records.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ]\n}\n");

    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_dispatch.json", json).expect("write BENCH_dispatch.json");
    println!();
    println!(
        "wrote results/BENCH_dispatch.json ({} grid + {} no-loss records)",
        grid_records.len(),
        noloss_records.len()
    );
}
