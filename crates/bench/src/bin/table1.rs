//! Regenerates Table 1 of the paper: unicast / broadcast / ideal
//! multicast costs under degree-0.4 regionalism, across network sizes,
//! subscription counts and predicate distributions.
//!
//! ```text
//! cargo run --release -p pubsub-bench --bin table1 [-- --scale quick|medium|paper]
//! ```

use pubsub_bench::{csv_requested, Scale};
use sim::experiments::{paper_table1_specs, table_rows};
use sim::report::{render_table, render_table_csv};

fn main() {
    let scale = Scale::from_args();
    let specs = paper_table1_specs();
    let (specs, events) = match scale {
        Scale::Quick => (specs[..6].to_vec(), 30),
        Scale::Medium => (specs, 100),
        Scale::Paper => (specs, 500),
    };
    let rows = table_rows(0.4, &specs, events, 1);
    if csv_requested() {
        print!("{}", render_table_csv(&rows));
    } else {
        print!(
            "{}",
            render_table(
                "Table 1: mean per-event cost, degree-0.4 regionalism",
                &rows
            )
        );
    }
}
