//! Matching throughput (Section 4.6 of the paper: "Matching must \[be\]
//! done efficiently, since the delay caused by the matching algorithm
//! directly affects the maximum throughput of the system").
//!
//! Measures events matched per second for the three engines — brute
//! force, the R-tree subscription index, and the counting matcher —
//! across subscription counts on the stock workload.
//!
//! ```text
//! cargo run --release -p pubsub-bench --bin matching_perf [-- --scale quick|medium|paper]
//! ```

use std::time::Instant;

use netsim::TransitStubParams;
use pubsub_bench::Scale;
use pubsub_core::{CountingMatcher, SubscriptionIndex};
use sim::StockScenario;
use workload::StockModel;

fn main() {
    let (sub_counts, events) = match Scale::from_args() {
        Scale::Quick => (vec![200usize, 500], 2_000usize),
        Scale::Medium => (vec![500usize, 1000, 2000], 10_000),
        Scale::Paper => (vec![1000usize, 2000, 5000, 10000], 20_000),
    };
    println!(
        "{:>7} {:>14} {:>14} {:>14}   (events matched per second; {} events each)",
        "subs", "brute", "rtree", "counting", events
    );
    for &subs in &sub_counts {
        let model = StockModel::default().with_sizes(subs, events);
        let sc = StockScenario::generate(&model, &TransitStubParams::paper_100_nodes(), 100, 31);
        let points: Vec<geometry::Point> =
            sc.workload.events.iter().map(|e| e.point.clone()).collect();
        let index = SubscriptionIndex::build(&sc.rects);
        let counting = CountingMatcher::build(&sc.rects);

        let time = |f: &dyn Fn(&geometry::Point) -> usize| {
            let start = Instant::now();
            let mut total = 0usize;
            for p in &points {
                total += f(p);
            }
            let secs = start.elapsed().as_secs_f64();
            (points.len() as f64 / secs, total)
        };
        let (brute_eps, brute_total) = time(&|p| sc.rects.iter().filter(|r| r.contains(p)).count());
        let (rtree_eps, rtree_total) = time(&|p| index.matching(p).len());
        let (count_eps, count_total) = time(&|p| counting.matching(p).len());
        assert_eq!(brute_total, rtree_total, "engines disagree");
        assert_eq!(brute_total, count_total, "engines disagree");
        println!("{subs:>7} {brute_eps:>14.0} {rtree_eps:>14.0} {count_eps:>14.0}");
    }
    println!();
    println!("on this workload events match ~10% of all subscriptions, so output");
    println!("size dominates: the R-tree roughly doubles brute-force throughput,");
    println!("while the counting matcher's per-dimension hit lists make it pay");
    println!("only when selectivity is higher (narrower subscriptions).");
}
