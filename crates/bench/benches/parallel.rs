//! Criterion benches of the parallel execution layer: serial
//! (1 worker) vs fanned-out (4 workers) runs of the distance-matrix
//! build and the two algorithms that lean on it hardest (Pairwise
//! Grouping and MST), each from a cold cache so the parallel section
//! is inside the measurement.
//!
//! The worker count is forced through `parallel::with_threads`, so the
//! comparison is meaningful regardless of `PUBSUB_THREADS`. For the
//! scripted speedup report (JSON, more cell counts, bit-identity
//! checks) use the `perf` bin — see `docs/BENCHMARK.md`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netsim::TransitStubParams;
use pubsub_core::parallel::with_threads;
use pubsub_core::{ClusteringAlgorithm, MstClustering, PairsStrategy, PairwiseGrouping};
use sim::StockScenario;
use workload::StockModel;

const K: usize = 25;
const CELLS: usize = 800;
const THREADS: [usize; 2] = [1, 4];

fn bench_parallel_clustering(c: &mut Criterion) {
    let model = StockModel::default().with_sizes(500, 50);
    let sc = StockScenario::generate(&model, &TransitStubParams::paper_100_nodes(), 300, 77);
    let fw = sc.framework(CELLS);

    let mut group = c.benchmark_group("parallel_speedup");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);

    for threads in THREADS {
        group.bench_with_input(
            BenchmarkId::new("distances", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let cold = fw.with_cold_distance_cache();
                    with_threads(threads, || {
                        cold.distance_matrix();
                    });
                })
            },
        );
    }

    let algs: Vec<(&str, Box<dyn ClusteringAlgorithm>)> = vec![
        (
            "pairs",
            Box::new(PairwiseGrouping::new(PairsStrategy::Exact)),
        ),
        ("mst", Box::new(MstClustering::new())),
    ];
    for (name, alg) in &algs {
        for threads in THREADS {
            group.bench_with_input(BenchmarkId::new(*name, threads), &threads, |b, &threads| {
                b.iter(|| {
                    let cold = fw.with_cold_distance_cache();
                    with_threads(threads, || alg.cluster(&cold, K))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_clustering);
criterion_main!(benches);
