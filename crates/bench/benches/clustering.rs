//! Criterion benches of the clustering algorithms themselves — the
//! runtime side of Figures 10 and 11: how each algorithm scales with
//! the number of hyper-cells it is given.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netsim::TransitStubParams;
use pubsub_core::{
    ClusteringAlgorithm, GridFramework, KMeans, KMeansVariant, MstClustering, NoLossClustering,
    NoLossConfig, PairsStrategy, PairwiseGrouping,
};
use sim::StockScenario;
use workload::StockModel;

const K: usize = 25;

fn scenario() -> StockScenario {
    let model = StockModel::default().with_sizes(400, 50);
    StockScenario::generate(&model, &TransitStubParams::paper_100_nodes(), 300, 77)
}

fn frameworks(sc: &StockScenario) -> Vec<(usize, GridFramework)> {
    [100usize, 300, 600]
        .iter()
        .map(|&cells| (cells, sc.framework(cells)))
        .collect()
}

fn bench_grid_algorithms(c: &mut Criterion) {
    let sc = scenario();
    let fws = frameworks(&sc);
    let algs: Vec<Box<dyn ClusteringAlgorithm>> = vec![
        Box::new(KMeans::new(KMeansVariant::MacQueen)),
        Box::new(KMeans::new(KMeansVariant::Forgy)),
        Box::new(MstClustering::new()),
        Box::new(PairwiseGrouping::new(PairsStrategy::Exact)),
        Box::new(PairwiseGrouping::new(PairsStrategy::Approximate {
            seed: 1,
        })),
    ];
    let mut group = c.benchmark_group("fig10_clustering_runtime");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    for (cells, fw) in &fws {
        for alg in &algs {
            group.bench_with_input(BenchmarkId::new(alg.name(), cells), fw, |b, fw| {
                b.iter(|| alg.cluster(fw, K))
            });
        }
    }
    group.finish();
}

fn bench_noloss(c: &mut Criterion) {
    let sc = scenario();
    let mut group = c.benchmark_group("fig8_noloss_runtime");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    for rects in [100usize, 200, 400] {
        let cfg = NoLossConfig {
            max_rects: rects,
            iterations: 3,
            max_candidates_per_round: 50_000,
        };
        group.bench_with_input(BenchmarkId::new("rects", rects), &cfg, |b, cfg| {
            b.iter(|| NoLossClustering::build(&sc.rects, &sc.density_sample, cfg, K))
        });
    }
    for iters in [1usize, 3, 6] {
        let cfg = NoLossConfig {
            max_rects: 200,
            iterations: iters,
            max_candidates_per_round: 50_000,
        };
        group.bench_with_input(BenchmarkId::new("iterations", iters), &cfg, |b, cfg| {
            b.iter(|| NoLossClustering::build(&sc.rects, &sc.density_sample, cfg, K))
        });
    }
    group.finish();
}

/// Warm-started re-balancing vs cold clustering after one subscription
/// change (the Section 6.5 dynamics story in numbers).
fn bench_dynamic_rebalance(c: &mut Criterion) {
    use geometry::{Grid, Interval, Rect};
    use pubsub_core::{CellProbability, DynamicClustering, KMeansVariant};

    let grid = Grid::cube(0.0, 100.0, 1, 50).unwrap();
    let probs = CellProbability::uniform(&grid);
    let build_population = |d: &mut DynamicClustering| {
        for i in 0..150 {
            let lo = (i % 90) as f64;
            d.subscribe(Rect::new(vec![Interval::new(lo, lo + 10.0).unwrap()]));
        }
    };
    let mut group = c.benchmark_group("dynamic_rebalance");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    group.bench_function("warm_after_one_change", |b| {
        b.iter_batched(
            || {
                let mut d = DynamicClustering::new(
                    grid.clone(),
                    probs.clone(),
                    pubsub_core::KMeans::new(KMeansVariant::MacQueen),
                    12,
                );
                build_population(&mut d);
                d.rebalance();
                d.subscribe(Rect::new(vec![Interval::new(40.0, 55.0).unwrap()]));
                d
            },
            |mut d| d.rebalance(),
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("cold_rebuild_after_one_change", |b| {
        b.iter_batched(
            || {
                let mut d = DynamicClustering::new(
                    grid.clone(),
                    probs.clone(),
                    pubsub_core::KMeans::new(KMeansVariant::MacQueen),
                    12,
                );
                build_population(&mut d);
                d.rebalance();
                d.subscribe(Rect::new(vec![Interval::new(40.0, 55.0).unwrap()]));
                d
            },
            |mut d| d.rebuild(),
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_grid_algorithms,
    bench_noloss,
    bench_dynamic_rebalance
);
criterion_main!(benches);
