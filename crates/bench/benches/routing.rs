//! Criterion benches of the network cost models (the dynamic stage
//! behind Tables 1–2 and the cost axis of every figure): Dijkstra,
//! pruned-SPT multicast, overlay-MST application-level multicast.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netsim::{NodeId, Router, ShortestPathTree, Topology, TransitStubParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn topo(params: &TransitStubParams, seed: u64) -> Topology {
    Topology::generate(params, &mut StdRng::seed_from_u64(seed))
}

fn bench_dijkstra(c: &mut Criterion) {
    let mut group = c.benchmark_group("dijkstra");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for (name, params) in [
        ("100", TransitStubParams::paper_100_nodes()),
        ("600", TransitStubParams::paper_section51()),
    ] {
        let t = topo(&params, 1);
        group.bench_with_input(BenchmarkId::from_parameter(name), &t, |b, t| {
            b.iter(|| ShortestPathTree::compute(t.graph(), NodeId(0)))
        });
    }
    group.finish();
}

fn bench_delivery_schemes(c: &mut Criterion) {
    let t = topo(&TransitStubParams::paper_section51(), 2);
    let nodes: Vec<NodeId> = t.stub_nodes().collect();
    let members: Vec<NodeId> = nodes.iter().step_by(7).copied().collect();
    let src = nodes[0];
    let mut group = c.benchmark_group("delivery_schemes_600_nodes");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("unicast", |b| {
        let mut r = Router::new(t.graph());
        b.iter(|| r.unicast_cost(src, members.iter().copied()))
    });
    group.bench_function("network_multicast", |b| {
        let mut r = Router::new(t.graph());
        b.iter(|| r.group_multicast_cost(src, &members))
    });
    group.bench_function("app_level_multicast", |b| {
        let mut r = Router::new(t.graph());
        b.iter(|| r.app_multicast_cost(src, &members))
    });
    group.bench_function("broadcast", |b| {
        let mut r = Router::new(t.graph());
        b.iter(|| r.broadcast_cost(src))
    });
    group.finish();
}

criterion_group!(benches, bench_dijkstra, bench_delivery_schemes);
criterion_main!(benches);
