//! Criterion benches of the batched kernels (DESIGN.md §13): the
//! blocked one-pass `waste_counts` against the scalar two-pass
//! formulation it replaced, and the cell-bucketed `serve_batch` /
//! `dispatch_batch` kernels against their per-event counterparts, on
//! the dispatch bin's hot-region workload shape. For the scripted
//! throughput report (JSON, identity checks at forced thread counts)
//! use the `dispatch` bin — see `docs/BENCHMARK.md`.

use criterion::{criterion_group, criterion_main, Criterion};
use geometry::{Grid, Interval, Point, Rect};
use pubsub_core::{
    BatchScratch, BitSet, CellProbability, ClusteringAlgorithm, Delivery, DispatchPlan,
    DispatchScratch, GridFramework, KMeans, KMeansVariant,
};
use rand::prelude::*;

const GRID_CELLS: usize = 2048;
const GROUPS: usize = 32;
const SUBS: usize = 20_000;
const EVENTS: usize = 20_000;
/// Events with precomputed interested sets for the dispatch pair
/// (~2.5 KB of `BitSet` per event at this population).
const DISPATCH_EVENTS: usize = 4_000;
const BATCH: usize = 4_096;
const HOT_REGION: f64 = 0.05;

fn random_rect(rng: &mut StdRng) -> Rect {
    let (lo, width) = if rng.gen_bool(0.3) {
        (
            rng.gen_range(0.0..HOT_REGION * 0.8),
            rng.gen_range(0.002..0.01),
        )
    } else {
        (rng.gen_range(0.0..0.98), rng.gen_range(0.005..0.02))
    };
    Rect::new(vec![Interval::new(lo, (lo + width).min(1.0)).unwrap()])
}

fn bench_waste_counts(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let universe = 100_000;
    let a = BitSet::from_members(universe, (0..universe).filter(|_| rng.gen_bool(0.3)));
    let b = BitSet::from_members(universe, (0..universe).filter(|_| rng.gen_bool(0.3)));
    let mut group = c.benchmark_group("waste_counts_100k");
    group.sample_size(60);
    group.bench_function("blocked_one_pass", |ben| {
        ben.iter(|| criterion::black_box(a.waste_counts(&b)))
    });
    group.bench_function("scalar_two_pass", |ben| {
        ben.iter(|| criterion::black_box((a.difference_count(&b), b.difference_count(&a))))
    });
    group.finish();
}

fn bench_batched_dispatch(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2002);
    let subs: Vec<Rect> = (0..SUBS).map(|_| random_rect(&mut rng)).collect();
    let events: Vec<Point> = (0..EVENTS)
        .map(|_| {
            let x = if rng.gen_bool(0.3) {
                rng.gen_range(0.0..HOT_REGION)
            } else {
                rng.gen_range(0.0..1.0)
            };
            Point::new(vec![x])
        })
        .collect();
    let grid = Grid::cube(0.0, 1.0, 1, GRID_CELLS).unwrap();
    let probs = CellProbability::uniform(&grid);
    let fw = GridFramework::build(grid, &subs, &probs, Some(GRID_CELLS));
    let clustering = KMeans::new(KMeansVariant::MacQueen).cluster(&fw, GROUPS);
    let plan = DispatchPlan::compile(&fw, &clustering)
        .with_threshold(0.15)
        .with_subscriptions(&subs);

    let mut group = c.benchmark_group("serve_20k_events");
    group.sample_size(10);
    let mut scalar = DispatchScratch::new();
    group.bench_function("per_event", |ben| {
        ben.iter(|| {
            for p in &events {
                criterion::black_box(plan.serve(p, &mut scalar));
            }
        })
    });
    let mut scratch = BatchScratch::new();
    let mut out: Vec<Delivery> = Vec::with_capacity(events.len());
    group.bench_function("bucketed", |ben| {
        ben.iter(|| {
            out.clear();
            let mut start = 0;
            while start < events.len() {
                let end = (start + BATCH).min(events.len());
                plan.serve_batch(start..end, |e| &events[e], &mut scratch, &mut out);
                start = end;
            }
            criterion::black_box(out.len());
        })
    });
    group.finish();

    let sets: Vec<BitSet> = events[..DISPATCH_EVENTS]
        .iter()
        .map(|p| {
            BitSet::from_members(
                subs.len(),
                subs.iter()
                    .enumerate()
                    .filter(|(_, r)| r.contains(p))
                    .map(|(i, _)| i),
            )
        })
        .collect();
    let mut group = c.benchmark_group("dispatch_4k_events");
    group.sample_size(10);
    group.bench_function("per_event", |ben| {
        ben.iter(|| {
            for (p, s) in events[..DISPATCH_EVENTS].iter().zip(&sets) {
                criterion::black_box(plan.dispatch(p, s));
            }
        })
    });
    group.bench_function("bucketed", |ben| {
        ben.iter(|| {
            out.clear();
            let mut start = 0;
            while start < DISPATCH_EVENTS {
                let end = (start + BATCH).min(DISPATCH_EVENTS);
                plan.dispatch_batch(
                    start..end,
                    |e| &events[e],
                    |e| &sets[e],
                    &mut scratch,
                    &mut out,
                );
                start = end;
            }
            criterion::black_box(out.len());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_waste_counts, bench_batched_dispatch);
criterion_main!(benches);
