//! Criterion benches of the preprocessing pipeline (the static stage
//! behind every figure): workload generation, rasterization +
//! hyper-cell merging, R-tree construction and event matching.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geometry::Grid;
use netsim::{Topology, TransitStubParams};
use pubsub_core::{CellProbability, GridFramework};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::StockScenario;
use spatial::RTree;
use workload::StockModel;

fn bench_topology_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology_generation");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for (name, params) in [
        ("100", TransitStubParams::paper_100_nodes()),
        ("300", TransitStubParams::paper_300_nodes()),
        ("600", TransitStubParams::paper_section51()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &params, |b, p| {
            b.iter(|| Topology::generate(p, &mut StdRng::seed_from_u64(1)))
        });
    }
    group.finish();
}

fn bench_framework_build(c: &mut Criterion) {
    let model = StockModel::default().with_sizes(400, 20);
    let sc = StockScenario::generate(&model, &TransitStubParams::paper_100_nodes(), 200, 3);
    let grid = Grid::new(
        sc.workload.bounds.clone(),
        sc.workload.suggested_bins.clone(),
    )
    .unwrap();
    let probs = CellProbability::empirical(&grid, &sc.density_sample);
    let mut group = c.benchmark_group("framework_build");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    group.bench_function("rasterize_merge_rank", |b| {
        b.iter(|| GridFramework::build(grid.clone(), &sc.rects, &probs, Some(500)))
    });
    group.finish();
}

fn bench_rtree(c: &mut Criterion) {
    let model = StockModel::default().with_sizes(1000, 200);
    let sc = StockScenario::generate(&model, &TransitStubParams::paper_100_nodes(), 100, 4);
    let items: Vec<_> = sc
        .rects
        .iter()
        .enumerate()
        .map(|(i, r)| (r.clone(), i))
        .collect();
    let mut group = c.benchmark_group("rtree");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("bulk_load_1000", |b| {
        b.iter(|| RTree::bulk_load(4, items.clone()))
    });
    let tree = RTree::bulk_load(4, items);
    let probes: Vec<_> = sc.workload.events.iter().map(|e| e.point.clone()).collect();
    group.bench_function("stab_200_events", |b| {
        b.iter(|| probes.iter().map(|p| tree.stab(p).len()).sum::<usize>())
    });
    group.finish();
}

/// The paper's two index candidates (R*-tree substitute vs S-tree)
/// against the brute-force scan, on the same matching workload.
fn bench_index_comparison(c: &mut Criterion) {
    use spatial::STree;
    let model = StockModel::default().with_sizes(1000, 200);
    let sc = StockScenario::generate(&model, &TransitStubParams::paper_100_nodes(), 100, 6);
    let items: Vec<_> = sc
        .rects
        .iter()
        .enumerate()
        .map(|(i, r)| (r.clone(), i))
        .collect();
    let rtree = RTree::bulk_load(4, items.clone());
    let stree = STree::build(4, items);
    let counting = pubsub_core::CountingMatcher::build(&sc.rects);
    let probes: Vec<_> = sc.workload.events.iter().map(|e| e.point.clone()).collect();
    let mut group = c.benchmark_group("matching_index_comparison");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("rtree_stab", |b| {
        b.iter(|| probes.iter().map(|p| rtree.stab(p).len()).sum::<usize>())
    });
    group.bench_function("stree_stab", |b| {
        b.iter(|| probes.iter().map(|p| stree.stab(p).len()).sum::<usize>())
    });
    group.bench_function("counting_match", |b| {
        b.iter(|| {
            probes
                .iter()
                .map(|p| counting.matching(p).len())
                .sum::<usize>()
        })
    });
    group.bench_function("brute_force", |b| {
        b.iter(|| {
            probes
                .iter()
                .map(|p| sc.rects.iter().filter(|r| r.contains(p)).count())
                .sum::<usize>()
        })
    });
    group.finish();
}

/// Broker-tree construction and per-event hop-by-hop delivery.
fn bench_broker(c: &mut Criterion) {
    use broker::BrokerNetwork;
    let model = StockModel::default().with_sizes(500, 100);
    let sc = StockScenario::generate(&model, &TransitStubParams::paper_100_nodes(), 100, 8);
    let subs: Vec<(netsim::NodeId, geometry::Rect)> = sc
        .workload
        .subscriptions
        .iter()
        .map(|s| (s.node, s.rect.clone()))
        .collect();
    let mut group = c.benchmark_group("broker");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    group.bench_function("build_500_subs", |b| {
        b.iter(|| BrokerNetwork::build(sc.topo.graph(), &subs))
    });
    let net = BrokerNetwork::build(sc.topo.graph(), &subs);
    group.bench_function("deliver_100_events", |b| {
        b.iter(|| {
            sc.workload
                .events
                .iter()
                .map(|e| net.deliver(e.publisher, &e.point).cost)
                .sum::<f64>()
        })
    });
    group.finish();
}

fn bench_matching(c: &mut Criterion) {
    let model = StockModel::default().with_sizes(400, 200);
    let sc = StockScenario::generate(&model, &TransitStubParams::paper_100_nodes(), 200, 5);
    let fw = sc.framework(500);
    let mut group = c.benchmark_group("matching");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("hyper_of_point_200_events", |b| {
        b.iter(|| {
            sc.workload
                .events
                .iter()
                .filter_map(|e| fw.hyper_of_point(&e.point))
                .count()
        })
    });
    group.bench_function("brute_force_interest_200_events", |b| {
        b.iter(|| {
            sc.workload
                .events
                .iter()
                .map(|e| sc.workload.matching_subscriptions(&e.point).len())
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_topology_generation,
    bench_framework_build,
    bench_rtree,
    bench_index_comparison,
    bench_broker,
    bench_matching
);
criterion_main!(benches);
