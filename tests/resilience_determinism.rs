//! Cross-crate guarantees of the failure pipeline: the zero-fault run
//! is a strict no-op (bit-identical costs to the fault-free
//! breakdown), faulty runs partition every interested member exactly
//! once, and everything is thread-count invariant.

use netsim::{FaultModel, FaultSchedule, Topology, TransitStubParams};
use pubsub_core::parallel::with_threads;
use pubsub_core::{CellProbability, ClusteringAlgorithm, GridFramework, KMeans, KMeansVariant};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::{Evaluator, ResilienceBreakdown, RetryPolicy};
use workload::{PredicateDist, Section3Model, Workload};

fn scenario() -> (Topology, Workload) {
    let mut rng = StdRng::seed_from_u64(41);
    let topo = Topology::generate(&TransitStubParams::paper_100_nodes(), &mut rng);
    let model = Section3Model {
        regionalism: 0.4,
        dist: PredicateDist::Uniform,
        num_subscriptions: 250,
        num_events: 80,
    };
    let w = model.generate(&topo, &mut rng);
    (topo, w)
}

fn framework(w: &Workload) -> GridFramework {
    let grid = geometry::Grid::new(w.bounds.clone(), w.suggested_bins.clone()).unwrap();
    let rects: Vec<geometry::Rect> = w.subscriptions.iter().map(|s| s.rect.clone()).collect();
    let sample: Vec<geometry::Point> = w.events.iter().map(|e| e.point.clone()).collect();
    let probs = CellProbability::empirical(&grid, &sample);
    GridFramework::build(grid, &rects, &probs, Some(2000))
}

fn stormy(epochs: usize) -> FaultModel {
    FaultModel {
        epochs,
        link_fail: 0.12,
        node_crash: 0.05,
        degrade: 0.2,
        ..FaultModel::default()
    }
}

#[test]
fn zero_fault_run_is_bitwise_noop_at_every_thread_count() {
    let (topo, w) = scenario();
    let fw = framework(&w);
    let clustering = KMeans::new(KMeansVariant::Forgy).cluster(&fw, 25);
    let reference = with_threads(1, || {
        let mut ev = Evaluator::new(&topo, &w);
        ev.grid_clustering_breakdown(&fw, &clustering, 0.0)
    });
    for threads in [1, 8] {
        let r = with_threads(threads, || {
            let mut ev = Evaluator::new(&topo, &w);
            ev.resilience_breakdown(
                &fw,
                &clustering,
                0.0,
                &FaultSchedule::empty(),
                &RetryPolicy::default(),
                2002,
            )
        });
        assert_eq!(
            r.multicast_cost.to_bits(),
            reference.multicast_cost.to_bits(),
            "multicast cost drifted at {threads} threads"
        );
        assert_eq!(
            r.unicast_cost.to_bits(),
            reference.unicast_cost.to_bits(),
            "unicast cost drifted at {threads} threads"
        );
        assert_eq!(r.multicast_events, reference.multicast_events);
        assert_eq!(r.unicast_events, reference.unicast_events);
        assert_eq!(r.delivered, r.interested);
        assert_eq!(r.dropped + r.fallback_deliveries + r.retry_attempts, 0);
        assert_eq!(r.repair_traffic, 0.0);
        assert_eq!(r.spt_rebuilds, 0);
    }
}

#[test]
fn faulty_run_is_thread_count_invariant() {
    let (topo, w) = scenario();
    let fw = framework(&w);
    let clustering = KMeans::new(KMeansVariant::Forgy).cluster(&fw, 25);
    let schedule = FaultSchedule::random(topo.graph(), &stormy(4), 2002);
    let run = |threads: usize| -> ResilienceBreakdown {
        with_threads(threads, || {
            let mut ev = Evaluator::new(&topo, &w);
            ev.resilience_breakdown(
                &fw,
                &clustering,
                0.0,
                &schedule,
                &RetryPolicy::default(),
                2002,
            )
        })
    };
    let one = run(1);
    let eight = run(8);
    // Everything — costs, counts, RNG-driven losses — must be
    // bit-identical regardless of worker count.
    assert_eq!(one, eight);
    assert!(one.faulty_epochs >= 1, "schedule produced no faults");
}

#[test]
fn faulty_runs_partition_the_interested_set() {
    let (topo, w) = scenario();
    let fw = framework(&w);
    let clustering = KMeans::new(KMeansVariant::Forgy).cluster(&fw, 25);
    for seed in [3u64, 17, 2002] {
        let schedule = FaultSchedule::random(topo.graph(), &stormy(3), seed);
        let mut ev = Evaluator::new(&topo, &w);
        let r = ev.resilience_breakdown(
            &fw,
            &clustering,
            0.0,
            &schedule,
            &RetryPolicy::default(),
            seed,
        );
        assert_eq!(
            r.delivered + r.fallback_deliveries + r.dropped,
            r.interested,
            "seed {seed}: delivered/fallback/dropped must partition the interested set"
        );
        assert!(r.total_cost().is_finite());
        assert!(r.delivery_rate() <= 1.0);
    }
}
