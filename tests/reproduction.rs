//! Headline-reproduction regression tests. These re-run the paper's
//! central claims at meaningful scale and are several-minute affairs,
//! so they are `#[ignore]`d by default:
//!
//! ```text
//! cargo test --release -p pubsub-bench --test reproduction -- --ignored
//! ```

use pubsub_core::{ClusteringAlgorithm, KMeans, KMeansVariant};
use sim::experiments::{fig7, paper_table1_specs, table_rows, Fig7Config};
use sim::{Evaluator, MulticastMode, StockScenario};

#[test]
#[ignore = "several minutes: full medium-scale Figure 7"]
fn headline_sixty_to_eighty_percent_with_under_100_groups() {
    // The abstract's claim: "An efficiency of 60% to 80% with respect
    // to the ideal solution can be achieved with a small number of
    // multicast groups (less than 100 in our experiments)."
    let res = fig7(&Fig7Config::medium());
    let forgy_net = res
        .series
        .iter()
        .find(|s| s.algorithm == "forgy" && s.mode == MulticastMode::NetworkSupported)
        .expect("forgy series present");
    let at_100 = forgy_net
        .points
        .iter()
        .find(|&&(k, _)| k == 100)
        .expect("K = 100 swept")
        .1;
    assert!(
        at_100 >= 60.0,
        "Forgy at K=100 reached only {at_100}% (paper: 60-80%)"
    );
}

#[test]
#[ignore = "several minutes: Table 1 crossover at paper scale"]
fn unicast_broadcast_crossover_reproduces() {
    let specs = paper_table1_specs();
    let rows = table_rows(0.4, &specs, 200, 1);
    // Dense rows: unicast above broadcast; sparse rows: below.
    let dense = rows
        .iter()
        .find(|r| r.nodes == 100 && r.subscriptions == 5000)
        .unwrap();
    assert!(dense.unicast > dense.broadcast);
    let sparse = rows
        .iter()
        .find(|r| r.nodes == 100 && r.subscriptions == 80)
        .unwrap();
    assert!(sparse.unicast < sparse.broadcast);
}

#[test]
#[ignore = "about a minute: medium-scale clustering quality"]
fn forgy_beats_no_clustering_by_a_wide_margin() {
    let model = workload::StockModel::default().with_sizes(1000, 200);
    let sc = StockScenario::generate(
        &model,
        &netsim::TransitStubParams::paper_section51(),
        400,
        2002,
    );
    let fw = sc.framework(2000);
    let clustering = KMeans::new(KMeansVariant::Forgy).cluster(&fw, 100);
    let mut ev = Evaluator::new(&sc.topo, &sc.workload);
    let b = ev.baseline_costs();
    let cost = ev.grid_clustering_cost(&fw, &clustering, 0.0, MulticastMode::NetworkSupported);
    let improvement = b.improvement_pct(cost);
    assert!(
        improvement > 70.0,
        "expected >70% improvement at K=100, got {improvement:.1}%"
    );
}
