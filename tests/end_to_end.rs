//! End-to-end integration tests spanning every crate: topology →
//! workload → clustering → matching → delivery cost.

use netsim::TransitStubParams;
use pubsub_core::{
    ClusteringAlgorithm, KMeans, KMeansVariant, MstClustering, NoLossClustering, NoLossConfig,
    PairsStrategy, PairwiseGrouping,
};
use sim::{Evaluator, MulticastMode, StockScenario};
use workload::{PublicationModes, StockModel};

fn scenario() -> StockScenario {
    let model = StockModel::default().with_sizes(300, 100);
    StockScenario::generate(&model, &TransitStubParams::paper_100_nodes(), 200, 99)
}

fn all_grid_algorithms() -> Vec<Box<dyn ClusteringAlgorithm>> {
    vec![
        Box::new(KMeans::new(KMeansVariant::MacQueen)),
        Box::new(KMeans::new(KMeansVariant::Forgy)),
        Box::new(MstClustering::new()),
        Box::new(PairwiseGrouping::new(PairsStrategy::Exact)),
        Box::new(PairwiseGrouping::new(PairsStrategy::Approximate {
            seed: 3,
        })),
    ]
}

#[test]
fn every_algorithm_respects_cost_bounds() {
    let sc = scenario();
    let fw = sc.framework(600);
    let mut ev = Evaluator::new(&sc.topo, &sc.workload);
    let b = ev.baseline_costs();
    assert!(b.ideal <= b.unicast + 1e-9);
    for alg in all_grid_algorithms() {
        let clustering = alg.cluster(&fw, 25);
        let cost = ev.grid_clustering_cost(&fw, &clustering, 0.0, MulticastMode::NetworkSupported);
        // No clustering can beat the per-event ideal groups.
        assert!(
            cost >= b.ideal - 1e-9,
            "{}: cost {cost} below ideal {}",
            alg.name(),
            b.ideal
        );
        assert!(cost.is_finite(), "{}: non-finite cost", alg.name());
    }
}

#[test]
fn clustering_beats_unicast_on_the_paper_workload() {
    // The paper's core claim: with a limited number of groups, grid
    // clustering recovers a substantial fraction of the ideal-multicast
    // saving. At K = 50 on this scenario every algorithm should at
    // least beat plain unicast.
    let sc = scenario();
    let fw = sc.framework(600);
    let mut ev = Evaluator::new(&sc.topo, &sc.workload);
    let b = ev.baseline_costs();
    for alg in all_grid_algorithms() {
        let clustering = alg.cluster(&fw, 50);
        let cost = ev.grid_clustering_cost(&fw, &clustering, 0.0, MulticastMode::NetworkSupported);
        let improvement = b.improvement_pct(cost);
        assert!(
            improvement > 0.0,
            "{}: improvement {improvement}% not positive (cost {cost}, unicast {})",
            alg.name(),
            b.unicast
        );
    }
}

#[test]
fn more_groups_help_each_algorithm_broadly() {
    let sc = scenario();
    let fw = sc.framework(600);
    let mut ev = Evaluator::new(&sc.topo, &sc.workload);
    let b = ev.baseline_costs();
    for alg in all_grid_algorithms() {
        let few = alg.cluster(&fw, 4);
        let many = alg.cluster(&fw, 64);
        let cost_few = ev.grid_clustering_cost(&fw, &few, 0.0, MulticastMode::NetworkSupported);
        let cost_many = ev.grid_clustering_cost(&fw, &many, 0.0, MulticastMode::NetworkSupported);
        assert!(
            b.improvement_pct(cost_many) >= b.improvement_pct(cost_few) - 5.0,
            "{}: K=64 ({:.1}%) much worse than K=4 ({:.1}%)",
            alg.name(),
            b.improvement_pct(cost_many),
            b.improvement_pct(cost_few)
        );
    }
}

#[test]
fn noloss_never_wastes_a_delivery() {
    // The defining no-loss property, verified end to end on generated
    // workloads: every subscriber of a matched region is genuinely
    // interested in the event.
    let sc = scenario();
    let nl = NoLossClustering::build(
        &sc.rects,
        &sc.density_sample,
        &NoLossConfig {
            max_rects: 400,
            iterations: 3,
            max_candidates_per_round: 50_000,
        },
        40,
    );
    let mut matched = 0usize;
    for ev in &sc.workload.events {
        if let Some(region) = nl.match_event(&ev.point) {
            matched += 1;
            for s in nl.regions()[region].subscribers.iter() {
                assert!(
                    sc.rects[s].contains(&ev.point),
                    "subscriber {s} got an event it never asked for"
                );
            }
        }
    }
    // The match rate should be non-trivial on this workload.
    assert!(matched > 0, "no event matched any no-loss region");
}

#[test]
fn multi_mode_publications_still_work() {
    for modes in [
        PublicationModes::One,
        PublicationModes::Four,
        PublicationModes::Nine,
    ] {
        let model = StockModel::default().with_sizes(200, 60).with_modes(modes);
        let sc = StockScenario::generate(&model, &TransitStubParams::paper_100_nodes(), 150, 5);
        let fw = sc.framework(400);
        let mut ev = Evaluator::new(&sc.topo, &sc.workload);
        let b = ev.baseline_costs();
        let clustering = KMeans::new(KMeansVariant::Forgy).cluster(&fw, 20);
        let cost = ev.grid_clustering_cost(&fw, &clustering, 0.0, MulticastMode::NetworkSupported);
        assert!(cost >= b.ideal - 1e-9, "{modes:?}");
        assert!(cost.is_finite(), "{modes:?}");
    }
}

#[test]
fn application_level_multicast_stays_in_the_same_ballpark() {
    // Figure 7's observation: application-level multicast costs a bit
    // more but "the algorithms that perform better under network
    // multicast maintain their leadership". Neither substrate strictly
    // dominates per event (the pruned SPT is not a Steiner tree), so we
    // assert the testable core: both sit between ideal and a small
    // multiple of each other for every algorithm.
    let sc = scenario();
    let fw = sc.framework(600);
    let mut ev = Evaluator::new(&sc.topo, &sc.workload);
    let b = ev.baseline_costs();
    for alg in all_grid_algorithms() {
        let clustering = alg.cluster(&fw, 25);
        let net = ev.grid_clustering_cost(&fw, &clustering, 0.0, MulticastMode::NetworkSupported);
        let app = ev.grid_clustering_cost(&fw, &clustering, 0.0, MulticastMode::ApplicationLevel);
        assert!(net >= b.ideal - 1e-9, "{}", alg.name());
        assert!(app >= b.ideal - 1e-9, "{}", alg.name());
        assert!(
            app <= 3.0 * net && net <= 3.0 * app,
            "{}: net {net} vs app {app}",
            alg.name()
        );
    }
}

#[test]
fn threshold_sweep_never_worse_than_plain_multicast_and_unicast_extremes() {
    let sc = scenario();
    let fw = sc.framework(600);
    let mut ev = Evaluator::new(&sc.topo, &sc.workload);
    let b = ev.baseline_costs();
    let clustering = KMeans::new(KMeansVariant::Forgy).cluster(&fw, 25);
    for threshold in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let cost =
            ev.grid_clustering_cost(&fw, &clustering, threshold, MulticastMode::NetworkSupported);
        assert!(cost >= b.ideal - 1e-9, "threshold {threshold}");
        // At threshold 1.0 nearly everything unicasts: cost ≈ unicast.
        if threshold == 1.0 {
            assert!(cost <= b.unicast + 1e-9);
        }
    }
}
