//! Thread-count invariance of the parallel pipeline: every fan-out
//! introduced by `pubsub_core::parallel` must be bit-for-bit
//! deterministic — one worker or eight, the framework, the clusterings
//! of all five algorithms and the Figure 7 numbers must be identical.
//!
//! The tests force both extremes through the thread-local override
//! (`parallel::with_threads`), so they are meaningful even on a
//! single-CPU machine and regardless of `PUBSUB_THREADS`.

use netsim::TransitStubParams;
use pubsub_core::parallel::with_threads;
use pubsub_core::{
    Clustering, ClusteringAlgorithm, GridFramework, KMeans, KMeansVariant, MstClustering,
    NoLossConfig, PairsStrategy, PairwiseGrouping,
};
use sim::experiments::{fig7, Fig7Config};
use sim::StockScenario;
use workload::StockModel;

/// The five clustering algorithms of the paper's evaluation.
fn algorithms() -> Vec<Box<dyn ClusteringAlgorithm>> {
    vec![
        Box::new(KMeans::new(KMeansVariant::MacQueen)),
        Box::new(KMeans::new(KMeansVariant::Forgy)),
        Box::new(MstClustering::new()),
        Box::new(PairwiseGrouping::new(PairsStrategy::Exact)),
        Box::new(PairwiseGrouping::new(PairsStrategy::Approximate {
            seed: 99,
        })),
    ]
}

fn assignment(fw: &GridFramework, c: &Clustering) -> Vec<usize> {
    (0..fw.hypercells().len())
        .map(|h| c.group_of_hyper(h))
        .collect()
}

#[test]
fn framework_build_is_thread_count_invariant() {
    let model = StockModel::default().with_sizes(150, 60);
    let build = |threads: usize| {
        with_threads(threads, || {
            let sc = StockScenario::generate(&model, &TransitStubParams::paper_100_nodes(), 100, 5);
            sc.framework(300)
        })
    };
    let (a, b) = (build(1), build(8));
    assert_eq!(a.hypercells().len(), b.hypercells().len());
    for (ha, hb) in a.hypercells().iter().zip(b.hypercells()) {
        assert_eq!(ha.cells, hb.cells);
        assert_eq!(ha.members, hb.members);
        assert_eq!(ha.prob.to_bits(), hb.prob.to_bits());
    }
}

#[test]
fn all_five_algorithms_are_thread_count_invariant() {
    let model = StockModel::default().with_sizes(200, 80);
    let sc = StockScenario::generate(&model, &TransitStubParams::paper_100_nodes(), 120, 7);
    let fw = sc.framework(300);
    for alg in algorithms() {
        // A cold cache per run makes each thread count rebuild the
        // shared distance matrix itself (in parallel at 8 workers).
        let run = |threads: usize| {
            let cold = fw.with_cold_distance_cache();
            with_threads(threads, || alg.cluster(&cold, 12))
        };
        let (c1, c8) = (run(1), run(8));
        assert_eq!(
            assignment(&fw, &c1),
            assignment(&fw, &c8),
            "{} assignments diverged across thread counts",
            alg.name()
        );
        assert_eq!(
            c1.total_expected_waste(&fw).to_bits(),
            c8.total_expected_waste(&fw).to_bits(),
            "{} waste diverged across thread counts",
            alg.name()
        );
    }
}

#[test]
fn fig7_numbers_are_thread_count_invariant() {
    let cfg = Fig7Config {
        model: StockModel::default().with_sizes(150, 80),
        topo: TransitStubParams::paper_100_nodes(),
        density_events: 150,
        ks: vec![4, 12],
        max_cells: 300,
        max_cells_pairs: 150,
        noloss: NoLossConfig {
            max_rects: 150,
            iterations: 2,
            max_candidates_per_round: 30_000,
        },
        seed: 2002,
    };
    let run = |threads: usize| with_threads(threads, || fig7(&cfg));
    let (a, b) = (run(1), run(8));
    assert_eq!(a.baselines.unicast.to_bits(), b.baselines.unicast.to_bits());
    assert_eq!(
        a.baselines.broadcast.to_bits(),
        b.baselines.broadcast.to_bits()
    );
    assert_eq!(a.baselines.ideal.to_bits(), b.baselines.ideal.to_bits());
    assert_eq!(a.series.len(), b.series.len());
    for (sa, sb) in a.series.iter().zip(&b.series) {
        assert_eq!(sa.algorithm, sb.algorithm);
        assert_eq!(sa.mode, sb.mode);
        assert_eq!(sa.points.len(), sb.points.len(), "{}", sa.algorithm);
        for (&(ka, pa), &(kb, pb)) in sa.points.iter().zip(&sb.points) {
            assert_eq!(ka, kb, "{}", sa.algorithm);
            assert_eq!(
                pa.to_bits(),
                pb.to_bits(),
                "{} K={} improvement diverged: {} vs {}",
                sa.algorithm,
                ka,
                pa,
                pb
            );
        }
    }
}
