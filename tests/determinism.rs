//! Reproducibility: identical seeds must reproduce identical topologies,
//! workloads, clusterings and costs — the property that makes the
//! experiment harness's numbers auditable.

use netsim::{Topology, TransitStubParams};
use pubsub_core::{ClusteringAlgorithm, KMeans, KMeansVariant, PairsStrategy, PairwiseGrouping};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::{Evaluator, MulticastMode, StockScenario};
use workload::{PredicateDist, Section3Model, StockModel};

#[test]
fn topology_generation_is_deterministic() {
    let params = TransitStubParams::paper_section51();
    let a = Topology::generate(&params, &mut StdRng::seed_from_u64(31));
    let b = Topology::generate(&params, &mut StdRng::seed_from_u64(31));
    assert_eq!(a.graph().num_nodes(), b.graph().num_nodes());
    assert_eq!(a.graph().num_edges(), b.graph().num_edges());
    for (ea, eb) in a.graph().edges().iter().zip(b.graph().edges()) {
        assert_eq!(ea, eb);
    }
}

#[test]
fn section3_workload_is_deterministic() {
    let params = TransitStubParams::paper_100_nodes();
    let model = Section3Model {
        regionalism: 0.4,
        dist: PredicateDist::Gaussian,
        num_subscriptions: 150,
        num_events: 40,
    };
    let make = || {
        let mut rng = StdRng::seed_from_u64(8);
        let topo = Topology::generate(&params, &mut rng);
        model.generate(&topo, &mut rng)
    };
    let (wa, wb) = (make(), make());
    assert_eq!(wa.subscriptions, wb.subscriptions);
    assert_eq!(wa.events, wb.events);
}

#[test]
fn full_pipeline_costs_are_deterministic() {
    let run = || {
        let model = StockModel::default().with_sizes(200, 60);
        let sc = StockScenario::generate(&model, &TransitStubParams::paper_100_nodes(), 120, 17);
        let fw = sc.framework(300);
        let clustering = KMeans::new(KMeansVariant::Forgy).cluster(&fw, 15);
        let mut ev = Evaluator::new(&sc.topo, &sc.workload);
        let b = ev.baseline_costs();
        let cost = ev.grid_clustering_cost(&fw, &clustering, 0.0, MulticastMode::NetworkSupported);
        (b.unicast, b.broadcast, b.ideal, cost)
    };
    assert_eq!(run(), run());
}

#[test]
fn seeded_approximate_pairs_is_deterministic() {
    let model = StockModel::default().with_sizes(150, 40);
    let sc = StockScenario::generate(&model, &TransitStubParams::paper_100_nodes(), 100, 23);
    let fw = sc.framework(200);
    let alg = PairwiseGrouping::new(PairsStrategy::Approximate { seed: 5 });
    let a = alg.cluster(&fw, 10);
    let b = alg.cluster(&fw, 10);
    assert_eq!(a.total_expected_waste(&fw), b.total_expected_waste(&fw));
    assert_eq!(a.num_groups(), b.num_groups());
}

#[test]
fn different_seeds_give_different_networks() {
    let params = TransitStubParams::paper_100_nodes();
    let a = Topology::generate(&params, &mut StdRng::seed_from_u64(1));
    let b = Topology::generate(&params, &mut StdRng::seed_from_u64(2));
    let same_edges = a
        .graph()
        .edges()
        .iter()
        .zip(b.graph().edges())
        .all(|(x, y)| x == y);
    assert!(!same_edges, "independent seeds produced identical networks");
}
