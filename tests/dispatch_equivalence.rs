//! The compiled dispatch plan is a pure optimization: every delivery
//! decision — and every downstream aggregate — is bit-identical to the
//! uncompiled matchers, for all five grid algorithms and No-Loss, at
//! any thread count.

use geometry::{Grid, Interval, Point, Rect};
use proptest::prelude::*;
use pubsub_core::{
    parallel, BitSet, CellProbability, Clustering, ClusteringAlgorithm, Delivery, DispatchPlan,
    DispatchScratch, GridFramework, GridMatcher, KMeans, KMeansVariant, MstClustering,
    NoLossClustering, NoLossConfig, NoLossDispatchPlan, PairsStrategy, PairwiseGrouping,
};

/// Random interval inside (0, 20], sometimes unbounded.
fn interval_strategy() -> impl Strategy<Value = Interval> {
    prop_oneof![
        3 => (0.0..20.0f64, 0.0..20.0f64).prop_map(|(a, b)| Interval::from_unordered(a, b)),
        1 => (0.0..20.0f64).prop_map(Interval::greater_than),
        1 => (0.0..20.0f64).prop_map(Interval::at_most),
        1 => Just(Interval::all()),
    ]
}

fn rect_strategy() -> impl Strategy<Value = Rect> {
    prop::collection::vec(interval_strategy(), 2).prop_map(Rect::new)
}

/// Points both on- and off-grid (the grid covers (0, 20]).
fn point_strategy() -> impl Strategy<Value = Point> {
    prop::collection::vec(-1.0..22.0f64, 2).prop_map(Point::new)
}

/// All five grid clustering algorithms of the paper.
fn algorithms() -> Vec<Box<dyn ClusteringAlgorithm>> {
    vec![
        Box::new(KMeans::new(KMeansVariant::MacQueen)),
        Box::new(KMeans::new(KMeansVariant::Forgy)),
        Box::new(PairwiseGrouping::new(PairsStrategy::Exact)),
        Box::new(PairwiseGrouping::new(PairsStrategy::Approximate {
            seed: 9,
        })),
        Box::new(MstClustering::new()),
    ]
}

fn build_framework(subs: &[Rect], max_cells: Option<usize>) -> GridFramework {
    let grid = Grid::cube(0.0, 20.0, 2, 10).unwrap();
    let probs = CellProbability::uniform(&grid);
    GridFramework::build(grid, subs, &probs, max_cells)
}

fn interested_set(subs: &[Rect], p: &Point) -> BitSet {
    BitSet::from_members(
        subs.len(),
        subs.iter()
            .enumerate()
            .filter(|(_, r)| r.contains(p))
            .map(|(i, _)| i),
    )
}

/// Chunked plan decisions under a pinned thread count, via the same
/// fixed-chunk decomposition `sim::delivery` uses.
fn chunked_decisions(
    plan: &DispatchPlan,
    points: &[Point],
    sets: &[BitSet],
    threads: usize,
) -> Vec<Delivery> {
    parallel::with_threads(threads, || {
        parallel::par_chunks(points.len(), 64, |range| {
            let mut out = Vec::with_capacity(range.len());
            plan.dispatch_chunk(range, |e| &points[e], |e| &sets[e], &mut out);
            out
        })
        .into_iter()
        .flatten()
        .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Grid dispatch: plan == matcher for all five algorithms, on both
    /// complete and truncated frameworks, serial and chunked at 1 and 8
    /// threads.
    #[test]
    fn plan_decisions_equal_matcher_decisions(
        subs in prop::collection::vec(rect_strategy(), 1..20),
        points in prop::collection::vec(point_strategy(), 1..40),
        threshold in 0.0..1.0f64,
        k in 1usize..6,
    ) {
        let sets: Vec<BitSet> = points.iter().map(|p| interested_set(&subs, p)).collect();
        for max_cells in [None, Some(5)] {
            let fw = build_framework(&subs, max_cells);
            for alg in algorithms() {
                let clustering = alg.cluster(&fw, k);
                let matcher = GridMatcher::new(&fw, &clustering).with_threshold(threshold);
                let plan = DispatchPlan::compile(&fw, &clustering).with_threshold(threshold);
                let reference: Vec<Delivery> = points
                    .iter()
                    .zip(&sets)
                    .map(|(p, s)| matcher.match_event(p, s))
                    .collect();
                for (i, (p, s)) in points.iter().zip(&sets).enumerate() {
                    prop_assert_eq!(
                        plan.dispatch(p, s),
                        reference[i],
                        "{} (max_cells {:?}): point {:?}",
                        alg.name(),
                        max_cells,
                        p
                    );
                }
                for threads in [1, 8] {
                    let chunked = chunked_decisions(&plan, &points, &sets, threads);
                    prop_assert_eq!(
                        &chunked,
                        &reference,
                        "{} (max_cells {:?}) diverged at {} thread(s)",
                        alg.name(),
                        max_cells,
                        threads
                    );
                }
            }
        }
    }

    /// The self-contained serve path computes the exact interested set
    /// (candidate pruning through the cell membership is lossless) and
    /// the same decision as the matcher fed the brute-force set.
    #[test]
    fn serve_equals_brute_force_plus_matcher(
        subs in prop::collection::vec(rect_strategy(), 1..20),
        points in prop::collection::vec(point_strategy(), 1..40),
        threshold in 0.0..1.0f64,
    ) {
        for max_cells in [None, Some(5)] {
            let fw = build_framework(&subs, max_cells);
            let clustering = KMeans::new(KMeansVariant::MacQueen).cluster(&fw, 4);
            let matcher = GridMatcher::new(&fw, &clustering).with_threshold(threshold);
            let plan = DispatchPlan::compile(&fw, &clustering)
                .with_threshold(threshold)
                .with_subscriptions(&subs);
            let mut scratch = DispatchScratch::new();
            for p in &points {
                let brute: Vec<usize> = subs
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r.contains(p))
                    .map(|(i, _)| i)
                    .collect();
                let decision = plan.serve(p, &mut scratch);
                prop_assert_eq!(scratch.interested(), &brute[..], "point {:?}", p);
                prop_assert_eq!(decision, matcher.match_event(p, &interested_set(&subs, p)));
            }
        }
    }

    /// No-Loss: the allocation-free fold and the compiled plan both
    /// reproduce the reference selection (max member count, then
    /// weight, then lower index, over all containing regions).
    #[test]
    fn noloss_plan_equals_reference_selection(
        subs in prop::collection::vec(rect_strategy(), 1..15),
        points in prop::collection::vec(point_strategy(), 1..40),
    ) {
        let cfg = NoLossConfig { max_rects: 60, iterations: 2, max_candidates_per_round: 5_000 };
        let nl = NoLossClustering::build(&subs, &[], &cfg, 30);
        let plan = NoLossDispatchPlan::compile(&nl);
        for p in &points {
            let reference = nl
                .regions()
                .iter()
                .enumerate()
                .filter(|(_, r)| r.rect.contains(p))
                .max_by(|(a, ra), (b, rb)| {
                    ra.subscribers
                        .count()
                        .cmp(&rb.subscribers.count())
                        .then_with(|| {
                            ra.weight.partial_cmp(&rb.weight).expect("weight is never NaN")
                        })
                        .then(b.cmp(a))
                })
                .map(|(i, _)| i);
            prop_assert_eq!(nl.match_event(p), reference, "match_event at {:?}", p);
            prop_assert_eq!(plan.match_event(p), reference, "plan at {:?}", p);
        }
    }
}

/// End-to-end: the numbers the simulator reports through the plan-based
/// path are bit-identical across thread counts (and internally the plan
/// replaced the per-event matcher, so this also pins plan == matcher on
/// a realistic scenario).
#[test]
fn delivery_breakdown_bits_identical_across_thread_counts() {
    use netsim::TransitStubParams;
    use rand::prelude::*;
    use sim::Evaluator;
    use workload::{PredicateDist, Section3Model};

    let mut rng = StdRng::seed_from_u64(5);
    let topo = netsim::Topology::generate(&TransitStubParams::paper_100_nodes(), &mut rng);
    let model = Section3Model {
        regionalism: 0.4,
        dist: PredicateDist::Uniform,
        num_subscriptions: 150,
        num_events: 80,
    };
    let w = model.generate(&topo, &mut rng);
    let grid = Grid::new(w.bounds.clone(), w.suggested_bins.clone()).unwrap();
    let rects: Vec<Rect> = w.subscriptions.iter().map(|s| s.rect.clone()).collect();
    let sample: Vec<Point> = w.events.iter().map(|e| e.point.clone()).collect();
    let probs = CellProbability::empirical(&grid, &sample);
    let fw = GridFramework::build(grid, &rects, &probs, Some(2000));

    let clusterings: Vec<Clustering> = algorithms().iter().map(|a| a.cluster(&fw, 10)).collect();
    let run = |threads: usize| {
        parallel::with_threads(threads, || {
            let mut ev = Evaluator::new(&topo, &w);
            clusterings
                .iter()
                .map(|c| {
                    let bd = ev.grid_clustering_breakdown(&fw, c, 0.25);
                    (
                        bd.events,
                        bd.multicast_events,
                        bd.unicast_events,
                        bd.multicast_cost.to_bits(),
                        bd.unicast_cost.to_bits(),
                        bd.mean_group_nodes.to_bits(),
                        bd.mean_wasted_nodes.to_bits(),
                        bd.mean_interested_nodes.to_bits(),
                    )
                })
                .collect::<Vec<_>>()
        })
    };
    assert_eq!(run(1), run(8), "breakdowns diverged across thread counts");
}
