//! Property-based integration tests of the matching pipeline's
//! correctness invariants, on randomly generated rectangle populations.

use geometry::{Grid, Interval, Point, Rect};
use proptest::prelude::*;
use pubsub_core::{
    BitSet, CellProbability, ClusteringAlgorithm, Delivery, GridFramework, GridMatcher, KMeans,
    KMeansVariant, MstClustering, NoLossClustering, NoLossConfig,
};

/// Random interval inside (0, 20], sometimes unbounded.
fn interval_strategy() -> impl Strategy<Value = Interval> {
    prop_oneof![
        3 => (0.0..20.0f64, 0.0..20.0f64).prop_map(|(a, b)| Interval::from_unordered(a, b)),
        1 => (0.0..20.0f64).prop_map(Interval::greater_than),
        1 => (0.0..20.0f64).prop_map(Interval::at_most),
        1 => Just(Interval::all()),
    ]
}

fn rect_strategy() -> impl Strategy<Value = Rect> {
    prop::collection::vec(interval_strategy(), 2).prop_map(Rect::new)
}

fn point_strategy() -> impl Strategy<Value = Point> {
    prop::collection::vec(0.01..20.0f64, 2).prop_map(Point::new)
}

fn build_framework(subs: &[Rect]) -> GridFramework {
    let grid = Grid::cube(0.0, 20.0, 2, 10).unwrap();
    let probs = CellProbability::uniform(&grid);
    GridFramework::build(grid, subs, &probs, None)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A kept cell's membership vector includes every subscriber whose
    /// rectangle contains any point of the cell — so grid matching can
    /// only ever OVER-deliver, never under-deliver.
    #[test]
    fn grid_groups_cover_all_interested_subscribers(
        subs in prop::collection::vec(rect_strategy(), 1..20),
        p in point_strategy(),
    ) {
        let fw = build_framework(&subs);
        let clustering = KMeans::new(KMeansVariant::Forgy).cluster(&fw, 4);
        let interested: Vec<usize> = subs
            .iter()
            .enumerate()
            .filter(|(_, r)| r.contains(&p))
            .map(|(i, _)| i)
            .collect();
        if let Some(group) = clustering.group_of_point(&fw, &p) {
            let members = &clustering.groups()[group].members;
            for &i in &interested {
                prop_assert!(
                    members.contains(i),
                    "interested subscriber {i} missing from matched group"
                );
            }
        } else {
            // No cell kept for this point ⇒ framework must know nobody
            // subscribed there (framework built with no truncation).
            prop_assert!(interested.is_empty(),
                "point with interested subscribers fell off the grid");
        }
    }

    /// The matcher's multicast decision always targets a group whose
    /// membership is a superset of the interested set.
    #[test]
    fn matcher_multicast_is_superset_of_interested(
        subs in prop::collection::vec(rect_strategy(), 1..20),
        p in point_strategy(),
        threshold in 0.0..1.0f64,
    ) {
        let fw = build_framework(&subs);
        let clustering = MstClustering::new().cluster(&fw, 4);
        let matcher = GridMatcher::new(&fw, &clustering).with_threshold(threshold);
        let interested = BitSet::from_members(
            subs.len(),
            subs.iter()
                .enumerate()
                .filter(|(_, r)| r.contains(&p))
                .map(|(i, _)| i),
        );
        if let Delivery::Multicast { group } = matcher.match_event(&p, &interested) {
            prop_assert!(interested.is_subset(&clustering.groups()[group].members));
        }
    }

    /// The no-loss property on arbitrary rectangle populations: any
    /// matched region's subscribers all contain the event point.
    #[test]
    fn noloss_regions_never_over_deliver(
        subs in prop::collection::vec(rect_strategy(), 1..15),
        p in point_strategy(),
    ) {
        let cfg = NoLossConfig { max_rects: 60, iterations: 2, max_candidates_per_round: 5_000 };
        let nl = NoLossClustering::build(&subs, &[], &cfg, 30);
        if let Some(region) = nl.match_event(&p) {
            let r = &nl.regions()[region];
            prop_assert!(r.rect.contains(&p));
            for s in r.subscribers.iter() {
                prop_assert!(subs[s].contains(&p),
                    "no-loss delivered to uninterested subscriber {s}");
            }
        }
    }

    /// The three matching engines agree on arbitrary inputs: R-tree
    /// index, counting matcher, and the brute-force scan.
    #[test]
    fn matching_engines_agree(
        subs in prop::collection::vec(rect_strategy(), 0..25),
        p in point_strategy(),
    ) {
        let index = pubsub_core::SubscriptionIndex::build(&subs);
        let counting = pubsub_core::CountingMatcher::build(&subs);
        let brute: Vec<usize> = subs
            .iter()
            .enumerate()
            .filter(|(_, r)| r.contains(&p))
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(index.matching(&p), brute.clone());
        prop_assert_eq!(counting.matching(&p), brute);
    }

    /// Every clustering algorithm produces a complete partition: each
    /// hyper-cell lands in exactly one group.
    #[test]
    fn clusterings_partition_the_hypercells(
        subs in prop::collection::vec(rect_strategy(), 1..20),
        k in 1usize..8,
    ) {
        let fw = build_framework(&subs);
        let algs: Vec<Box<dyn ClusteringAlgorithm>> = vec![
            Box::new(KMeans::new(KMeansVariant::MacQueen)),
            Box::new(KMeans::new(KMeansVariant::Forgy)),
            Box::new(MstClustering::new()),
        ];
        for alg in &algs {
            let c = alg.cluster(&fw, k);
            let mut seen = vec![false; fw.hypercells().len()];
            for g in c.groups() {
                for &h in &g.hypercells {
                    prop_assert!(!seen[h], "{}: hyper-cell {h} in two groups", alg.name());
                    seen[h] = true;
                }
            }
            prop_assert!(seen.iter().all(|&s| s), "{}: unassigned hyper-cell", alg.name());
            prop_assert!(c.num_groups() <= k.max(1), "{}: too many groups", alg.name());
        }
    }
}
