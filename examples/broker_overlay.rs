//! Content-based routing without multicast groups: the broker-tree
//! architecture (paper §6.6) end to end — build, deliver, churn, and
//! the propagation cost that makes churn expensive in this design.
//!
//! ```text
//! cargo run --release -p pubsub-bench --example broker_overlay
//! ```

use broker::BrokerNetwork;
use geometry::{Interval, Point, Rect};
use netsim::{NodeId, Router, Topology, TransitStubParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(5);
    let topo = Topology::generate(&TransitStubParams::paper_300_nodes(), &mut rng);
    let nodes: Vec<NodeId> = topo.stub_nodes().collect();

    // 200 price-band subscriptions.
    let subs: Vec<(NodeId, Rect)> = (0..200)
        .map(|_| {
            let node = nodes[rng.gen_range(0..nodes.len())];
            let center: f64 = rng.gen_range(10.0..90.0);
            let width: f64 = rng.gen_range(4.0..16.0);
            (
                node,
                Rect::new(vec![Interval::new(
                    center - width / 2.0,
                    center + width / 2.0,
                )
                .expect("ordered bounds")]),
            )
        })
        .collect();
    let mut net = BrokerNetwork::build(topo.graph(), &subs);
    println!(
        "broker network: {} brokers, {} subscriptions, full-tree flood cost {:.0}",
        net.num_brokers(),
        net.num_subscriptions(),
        net.tree_cost()
    );

    // Deliver a burst and compare with unicast on the same events.
    let mut router = Router::new(topo.graph());
    let mut broker_total = 0.0;
    let mut unicast_total = 0.0;
    for _ in 0..100 {
        let publisher = nodes[rng.gen_range(0..nodes.len())];
        let event = Point::new(vec![rng.gen_range(0.0..100.0)]);
        let d = net.deliver(publisher, &event);
        broker_total += d.cost;
        unicast_total += router.unicast_cost(publisher, d.receivers.iter().copied());
    }
    println!(
        "100 events: broker routing cost {broker_total:.0} vs unicast {unicast_total:.0} \
         ({:.0}% saved)",
        100.0 * (1.0 - broker_total / unicast_total.max(1e-9))
    );

    // Churn: every join touches every link of the tree.
    let (_, prop) = net.subscribe(nodes[0], Rect::new(vec![Interval::new(40.0, 60.0)?]));
    println!(
        "one new subscription propagated to {} per-link filters \
         (= every link of the {}-broker tree)",
        prop.filters_touched,
        net.num_brokers()
    );
    println!("that propagation cost is the paper's argument for precomputed");
    println!("multicast groups when subscriptions churn quickly.");
    Ok(())
}
