//! Regionalism and multicast benefit: the Section 3 story. A news-feed
//! workload where subscribers mostly care about their own region makes
//! multicast dramatically cheaper than unicast; with no regionalism the
//! gap narrows.
//!
//! ```text
//! cargo run --release -p pubsub-bench --example regional_news
//! ```

use netsim::{Topology, TransitStubParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::Evaluator;
use workload::{PredicateDist, Section3Model};

fn main() {
    println!(
        "{:>14} {:>8} {:>10} {:>10} {:>10} {:>16}",
        "regionalism", "subs", "unicast", "broadcast", "ideal", "ideal saves"
    );
    for &regionalism in &[0.0, 0.4, 0.8] {
        for &subs in &[200usize, 1000] {
            let mut rng = StdRng::seed_from_u64(7);
            let topo = Topology::generate(&TransitStubParams::paper_300_nodes(), &mut rng);
            let model = Section3Model {
                regionalism,
                dist: PredicateDist::Uniform,
                num_subscriptions: subs,
                num_events: 150,
            };
            let workload = model.generate(&topo, &mut rng);
            let mut evaluator = Evaluator::new(&topo, &workload);
            let b = evaluator.baseline_costs();
            println!(
                "{regionalism:>14.1} {subs:>8} {:>10.0} {:>10.0} {:>10.0} {:>15.1}%",
                b.unicast,
                b.broadcast,
                b.ideal,
                100.0 * (1.0 - b.ideal / b.unicast.max(1e-9))
            );
        }
    }
    println!();
    println!("Higher regionalism concentrates interested nodes near the");
    println!("publisher, so the ideal multicast tree shares far more links");
    println!("(the paper's argument for why clustering pays off on large,");
    println!("sparsely-subscribed networks).");
}
