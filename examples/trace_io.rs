//! Feeding external traces through the pipeline (paper §6.3): export a
//! generated workload to CSV, read it back as if it were real-world
//! data, and evaluate delivery costs on the imported trace.
//!
//! ```text
//! cargo run --release -p pubsub-bench --example trace_io
//! ```

use netsim::{Topology, TransitStubParams};
use pubsub_core::{CellProbability, ClusteringAlgorithm, GridFramework, KMeans, KMeansVariant};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::Evaluator;
use workload::{io, StockModel, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a workload and serialize it — in real use this side
    //    is replaced by your own trace producer.
    let mut rng = StdRng::seed_from_u64(12);
    let topo = Topology::generate(&TransitStubParams::paper_300_nodes(), &mut rng);
    let generated = StockModel::default()
        .with_sizes(400, 150)
        .generate(&topo, &mut rng);
    let mut subs_csv = Vec::new();
    let mut events_csv = Vec::new();
    io::write_subscriptions(&mut subs_csv, &generated.subscriptions)?;
    io::write_events(&mut events_csv, &generated.events)?;
    println!(
        "exported {} subscriptions ({} bytes) and {} events ({} bytes)",
        generated.subscriptions.len(),
        subs_csv.len(),
        generated.events.len(),
        events_csv.len()
    );

    // 2. Import as an external consumer would.
    let subscriptions = io::read_subscriptions(subs_csv.as_slice())?;
    let events = io::read_events(events_csv.as_slice())?;
    assert_eq!(subscriptions, generated.subscriptions);
    assert_eq!(events, generated.events);
    println!("round trip is bit-exact");

    // 3. Infer a grid from the trace alone and run the pipeline.
    let (bounds, bins) = io::infer_bounds(&subscriptions, &events, 12)?;
    println!("inferred event-space bounds: {bounds}");
    let workload = Workload {
        bounds: bounds.clone(),
        suggested_bins: bins.clone(),
        subscriptions,
        events,
    };
    let grid = geometry::Grid::new(bounds, bins)?;
    let sample: Vec<geometry::Point> = workload.events.iter().map(|e| e.point.clone()).collect();
    let probs = CellProbability::empirical(&grid, &sample);
    let rects: Vec<geometry::Rect> = workload
        .subscriptions
        .iter()
        .map(|s| s.rect.clone())
        .collect();
    let fw = GridFramework::build(grid, &rects, &probs, Some(3000));
    let clustering = KMeans::new(KMeansVariant::Forgy).cluster(&fw, 40);
    let mut evaluator = Evaluator::new(&topo, &workload);
    let b = evaluator.baseline_costs();
    let cost =
        evaluator.grid_clustering_cost(&fw, &clustering, 0.0, sim::MulticastMode::NetworkSupported);
    println!(
        "imported trace: unicast {:.0}, clustered {:.0}, ideal {:.0} -> improvement {:.1}%",
        b.unicast,
        cost,
        b.ideal,
        b.improvement_pct(cost)
    );
    Ok(())
}
