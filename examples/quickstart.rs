//! Quickstart: cluster a handful of stock subscriptions into multicast
//! groups and match an incoming event.
//!
//! ```text
//! cargo run --release -p pubsub-bench --example quickstart
//! ```

use geometry::{Grid, Interval, Point, Rect};
use pubsub_core::{
    BitSet, CellProbability, ClusteringAlgorithm, Delivery, GridFramework, GridMatcher, KMeans,
    KMeansVariant,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Subscriptions are axis-aligned rectangles over the event space
    // {name, price, volume}. A `*` predicate is an unbounded interval.
    let subscriptions = vec![
        // "IBM between 90 and 110, any volume"
        Rect::new(vec![
            Interval::equals_int(7),
            Interval::new(90.0, 110.0)?,
            Interval::all(),
        ]),
        // "IBM, any price, big trades only"
        Rect::new(vec![
            Interval::equals_int(7),
            Interval::all(),
            Interval::greater_than(10_000.0),
        ]),
        // "any cheap stock"
        Rect::new(vec![
            Interval::all(),
            Interval::at_most(20.0),
            Interval::all(),
        ]),
    ];

    // Discretize the event space and build the clustering framework:
    // rasterize → merge identical-membership cells → rank by popularity.
    let grid = Grid::new(
        Rect::new(vec![
            Interval::new(-1.0, 20.0)?,    // stock name (linearized)
            Interval::new(0.0, 200.0)?,    // price
            Interval::new(0.0, 50_000.0)?, // volume
        ]),
        vec![21, 20, 10],
    )?;
    let probs = CellProbability::uniform(&grid);
    let framework = GridFramework::build(grid, &subscriptions, &probs, None);
    println!(
        "{} subscriptions -> {} hyper-cells",
        subscriptions.len(),
        framework.hypercells().len()
    );

    // Cluster into two multicast groups with Forgy K-means.
    let clustering = KMeans::new(KMeansVariant::Forgy).cluster(&framework, 2);
    for (i, g) in clustering.groups().iter().enumerate() {
        let members: Vec<usize> = g.members.iter().collect();
        println!("group {i}: subscribers {members:?}");
    }

    // An IBM trade at $100.50 for 20,000 shares arrives.
    let event = Point::new(vec![7.0, 100.5, 20_000.0]);
    let interested = BitSet::from_members(
        subscriptions.len(),
        subscriptions
            .iter()
            .enumerate()
            .filter(|(_, r)| r.contains(&event))
            .map(|(i, _)| i),
    );
    println!(
        "event {event}: interested subscribers {:?}",
        interested.iter().collect::<Vec<_>>()
    );

    let matcher = GridMatcher::new(&framework, &clustering);
    match matcher.match_event(&event, &interested) {
        Delivery::Multicast { group } => {
            println!("-> multicast to group {group}");
        }
        Delivery::Unicast => println!("-> unicast to the interested subscribers"),
    }
    Ok(())
}
