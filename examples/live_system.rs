//! A live pub-sub system with subscription churn: subscribe, publish,
//! unsubscribe, re-balance — the full dynamic path of the paper
//! (Figure 5 matching + Section 6's dynamic-subscription discussion).
//!
//! ```text
//! cargo run --release -p pubsub-bench --example live_system
//! ```

use geometry::{Grid, Interval, Point, Rect};
use netsim::{NodeId, Topology, TransitStubParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sim::PubSubSystem;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(99);
    let topo = Topology::generate(&TransitStubParams::paper_300_nodes(), &mut rng);
    let nodes: Vec<NodeId> = topo.stub_nodes().collect();

    // Event space: a single "price" attribute 0..100.
    let grid = Grid::cube(0.0, 100.0, 1, 50)?;
    let mut system = PubSubSystem::new(&topo, grid, 16);

    // Phase 1: 150 subscribers with banded price interest.
    let mut ids = Vec::new();
    for _ in 0..150 {
        let node = nodes[rng.gen_range(0..nodes.len())];
        let center: f64 = rng.gen_range(20.0..80.0);
        let width: f64 = rng.gen_range(5.0..20.0);
        let id = system.subscribe(
            node,
            Rect::new(vec![Interval::new(
                (center - width / 2.0).max(0.0),
                (center + width / 2.0).min(100.0),
            )?]),
        );
        ids.push(id);
    }
    let moves = system.refresh();
    println!(
        "phase 1: {} subscribers clustered into groups ({moves} re-balancing moves)",
        system.num_subscriptions()
    );

    // Publish a burst of events.
    for _ in 0..200 {
        let publisher = nodes[rng.gen_range(0..nodes.len())];
        let price: f64 = rng.gen_range(0.0..100.0);
        system.publish(publisher, &Point::new(vec![price]));
    }
    let s = system.stats();
    println!(
        "phase 1 stats: {} events, {} multicast / {} unicast, total cost {:.0}",
        s.events, s.multicast_events, s.unicast_events, s.total_cost
    );

    // Phase 2: churn — a third of the subscribers leave, new ones join
    // with interest concentrated around 50.
    for id in ids.iter().take(50) {
        system.unsubscribe(*id)?;
    }
    for _ in 0..60 {
        let node = nodes[rng.gen_range(0..nodes.len())];
        let center: f64 = rng.gen_range(45.0..55.0);
        system.subscribe(
            node,
            Rect::new(vec![Interval::new(center - 5.0, center + 5.0)?]),
        );
    }
    let moves = system.refresh();
    println!(
        "\nphase 2: churn applied ({} live subscribers); warm re-balance took {moves} moves",
        system.num_subscriptions()
    );

    // Events around the new hot spot should now multicast tightly.
    let report = system.publish(nodes[0], &Point::new(vec![50.0]));
    println!(
        "event at price 50: {} interested subscriptions, {} receiver nodes, cost {:.0}, group {:?}",
        report.interested.len(),
        report.receiver_nodes.len(),
        report.cost,
        report.multicast_group
    );
    Ok(())
}
