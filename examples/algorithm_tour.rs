//! A tour of every clustering algorithm in the crate on one scenario:
//! waste, delivered cost, improvement and wall-clock time side by side.
//!
//! ```text
//! cargo run --release -p pubsub-bench --example algorithm_tour
//! ```

use std::time::Instant;

use netsim::TransitStubParams;
use pubsub_core::{
    ClusteringAlgorithm, KMeans, KMeansVariant, MstClustering, NoLossClustering, NoLossConfig,
    PairsStrategy, PairwiseGrouping,
};
use sim::{Evaluator, MulticastMode, StockScenario};
use workload::StockModel;

fn main() {
    let k = 50;
    let model = StockModel::default().with_sizes(600, 150);
    let scenario = StockScenario::generate(&model, &TransitStubParams::paper_section51(), 300, 11);
    let framework = scenario.framework(1200);
    let mut evaluator = Evaluator::new(&scenario.topo, &scenario.workload);
    let baselines = evaluator.baseline_costs();
    println!(
        "scenario: {} subs, {} events, {} hyper-cells, K = {k}",
        scenario.workload.subscriptions.len(),
        scenario.workload.events.len(),
        framework.hypercells().len()
    );
    println!(
        "baselines: unicast={:.0} broadcast={:.0} ideal={:.0}",
        baselines.unicast, baselines.broadcast, baselines.ideal
    );
    println!();
    println!(
        "{:>14} {:>10} {:>12} {:>14} {:>10}",
        "algorithm", "waste", "net cost", "improvement%", "seconds"
    );

    let algorithms: Vec<Box<dyn ClusteringAlgorithm>> = vec![
        Box::new(KMeans::new(KMeansVariant::MacQueen)),
        Box::new(KMeans::new(KMeansVariant::Forgy)),
        Box::new(MstClustering::new()),
        Box::new(PairwiseGrouping::new(PairsStrategy::Exact)),
        Box::new(PairwiseGrouping::new(PairsStrategy::Approximate {
            seed: 1,
        })),
    ];
    for alg in &algorithms {
        let start = Instant::now();
        let clustering = alg.cluster(&framework, k);
        let secs = start.elapsed().as_secs_f64();
        let waste = clustering.total_expected_waste(&framework);
        let cost = evaluator.grid_clustering_cost(
            &framework,
            &clustering,
            0.0,
            MulticastMode::NetworkSupported,
        );
        println!(
            "{:>14} {waste:>10.3} {cost:>12.0} {:>14.1} {secs:>10.3}",
            alg.name(),
            baselines.improvement_pct(cost)
        );
    }

    // No-Loss works on the raw rectangles, not the grid.
    let start = Instant::now();
    let nl = NoLossClustering::build(
        &scenario.rects,
        &scenario.density_sample,
        &NoLossConfig {
            max_rects: 1200,
            iterations: 4,
            max_candidates_per_round: 100_000,
        },
        k,
    );
    let secs = start.elapsed().as_secs_f64();
    let cost = evaluator.noloss_cost(&nl, MulticastMode::NetworkSupported);
    println!(
        "{:>14} {:>10} {cost:>12.0} {:>14.1} {secs:>10.3}",
        "no-loss",
        "0 (def.)",
        baselines.improvement_pct(cost)
    );
    println!();
    println!("(waste = expected deliveries to uninterested subscribers per event;");
    println!(" the No-Loss algorithm has zero waste by construction)");
}
