//! The paper's headline scenario end to end: the 600-node transit-stub
//! network, 1000 stock-market subscriptions, gaussian publications —
//! compare unicast, broadcast, ideal multicast and clustered multicast.
//!
//! ```text
//! cargo run --release -p pubsub-bench --example stock_market
//! ```

use netsim::TransitStubParams;
use pubsub_core::{ClusteringAlgorithm, KMeans, KMeansVariant};
use sim::{Evaluator, MulticastMode, StockScenario};
use workload::{PublicationModes, StockModel};

fn main() {
    // Section 5.1's scenario, scaled to run in seconds: the 600-node
    // network, stock subscriptions with regional name interest, a
    // single-mode gaussian publication distribution.
    let model = StockModel::default()
        .with_sizes(1000, 200)
        .with_modes(PublicationModes::One);
    let scenario = StockScenario::generate(
        &model,
        &TransitStubParams::paper_section51(),
        400, // held-out events for density estimation
        42,
    );
    println!(
        "network: {} nodes, {} stubs; workload: {} subscriptions, {} events",
        scenario.topo.num_nodes(),
        scenario.topo.stubs().len(),
        scenario.workload.subscriptions.len(),
        scenario.workload.events.len()
    );

    let mut evaluator = Evaluator::new(&scenario.topo, &scenario.workload);
    let baselines = evaluator.baseline_costs();
    println!(
        "baselines (mean cost/event): unicast={:.0} broadcast={:.0} ideal multicast={:.0}",
        baselines.unicast, baselines.broadcast, baselines.ideal
    );

    // Cluster subscriptions into K multicast groups with Forgy K-means
    // (the paper's recommended algorithm) and measure the delivered cost.
    let framework = scenario.framework(2000);
    println!(
        "grid framework: {} hyper-cells kept",
        framework.hypercells().len()
    );
    let forgy = KMeans::new(KMeansVariant::Forgy);
    println!(
        "{:>5} {:>12} {:>12} {:>18} {:>18}",
        "K", "net cost", "app cost", "net improvement%", "app improvement%"
    );
    for k in [10, 25, 50, 100] {
        let clustering = forgy.cluster(&framework, k);
        let net = evaluator.grid_clustering_cost(
            &framework,
            &clustering,
            0.0,
            MulticastMode::NetworkSupported,
        );
        let app = evaluator.grid_clustering_cost(
            &framework,
            &clustering,
            0.0,
            MulticastMode::ApplicationLevel,
        );
        println!(
            "{k:>5} {net:>12.0} {app:>12.0} {:>18.1} {:>18.1}",
            baselines.improvement_pct(net),
            baselines.improvement_pct(app)
        );
    }
    println!("(0% = unicast, 100% = per-event ideal multicast)");
}
