#!/usr/bin/env bash
# Regenerates every table, figure, ablation and extension study into
# results/. Scale: quick | medium (default) | paper.
set -euo pipefail

SCALE="${1:-medium}"
OUT="results"
mkdir -p "$OUT"

echo "== building (release) =="
cargo build --workspace --release

run() {
    local bin="$1"
    echo "== $bin ($SCALE) =="
    cargo run --release -q -p pubsub-bench --bin "$bin" -- --scale "$SCALE" \
        | tee "$OUT/${bin}_${SCALE}.txt"
}

for bin in table1 table2 fig7 fig8 fig9 fig10 fig11 \
           ablations modes architectures loadstats matching_perf fig7stats \
           resilience; do
    run "$bin"
done

echo "== examples =="
for ex in quickstart stock_market regional_news algorithm_tour \
          live_system broker_overlay trace_io; do
    echo "-- $ex"
    cargo run --release -q -p pubsub-bench --example "$ex" > "$OUT/example_${ex}.txt"
done

echo "all outputs in $OUT/"
